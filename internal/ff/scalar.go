package ff

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
)

// ScalarField provides arithmetic helpers for the exponent group Zq of the
// pairing subgroup. It is immutable after construction and safe for
// concurrent use.
type ScalarField struct {
	q *big.Int
}

// NewScalarField returns helpers for Zq. q must be a positive odd prime
// (primality is the caller's responsibility; only basic shape is checked).
func NewScalarField(q *big.Int) (*ScalarField, error) {
	if q == nil || q.Sign() <= 0 || q.Bit(0) != 1 {
		return nil, fmt.Errorf("ff: invalid scalar field order %v", q)
	}
	return &ScalarField{q: new(big.Int).Set(q)}, nil
}

// Order returns a copy of q.
func (s *ScalarField) Order() *big.Int { return new(big.Int).Set(s.q) }

// Rand returns a uniformly random nonzero scalar in [1, q).
func (s *ScalarField) Rand(r io.Reader) (*big.Int, error) {
	qm1 := new(big.Int).Sub(s.q, big.NewInt(1))
	for {
		v, err := rand.Int(r, qm1)
		if err != nil {
			return nil, fmt.Errorf("ff: sampling scalar: %w", err)
		}
		v.Add(v, big.NewInt(1))
		if v.Sign() != 0 {
			return v, nil
		}
	}
}

// Reduce returns x mod q as a fresh integer.
func (s *ScalarField) Reduce(x *big.Int) *big.Int {
	return new(big.Int).Mod(x, s.q)
}

// Add returns (a + b) mod q.
func (s *ScalarField) Add(a, b *big.Int) *big.Int {
	r := new(big.Int).Add(a, b)
	return r.Mod(r, s.q)
}

// Sub returns (a - b) mod q.
func (s *ScalarField) Sub(a, b *big.Int) *big.Int {
	r := new(big.Int).Sub(a, b)
	return r.Mod(r, s.q)
}

// Mul returns (a · b) mod q.
func (s *ScalarField) Mul(a, b *big.Int) *big.Int {
	r := new(big.Int).Mul(a, b)
	return r.Mod(r, s.q)
}

// Inv returns a⁻¹ mod q, or an error for a ≡ 0.
func (s *ScalarField) Inv(a *big.Int) (*big.Int, error) {
	r := new(big.Int).ModInverse(a, s.q)
	if r == nil {
		return nil, fmt.Errorf("ff: no inverse for %v mod q", a)
	}
	return r, nil
}

// HashToScalar maps an arbitrary byte string into Zq. This realizes the
// paper's hash functions H : {0,1}* → Zq and H2 : {0,1}* → Zq*.
//
// The construction expands SHA-256 with a counter until it has
// 128 bits of slack over q and reduces, which keeps the output
// statistically close to uniform.
func (s *ScalarField) HashToScalar(domain string, data ...[]byte) *big.Int {
	need := (s.q.BitLen() + 128 + 7) / 8
	buf := make([]byte, 0, need+sha256.Size)
	var ctr uint32
	for len(buf) < need {
		h := sha256.New()
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		h.Write([]byte(domain))
		for _, d := range data {
			var lb [8]byte
			binary.BigEndian.PutUint64(lb[:], uint64(len(d)))
			h.Write(lb[:])
			h.Write(d)
		}
		buf = h.Sum(buf)
		ctr++
	}
	v := new(big.Int).SetBytes(buf[:need])
	return v.Mod(v, s.q)
}

// HashToNonZeroScalar is HashToScalar with the (cryptographically
// negligible) zero output remapped to one, for uses requiring Zq*.
func (s *ScalarField) HashToNonZeroScalar(domain string, data ...[]byte) *big.Int {
	v := s.HashToScalar(domain, data...)
	if v.Sign() == 0 {
		v.SetInt64(1)
	}
	return v
}
