package ff

import (
	"bytes"
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

// Two fixtures: a tiny prime where behaviour can be eyeballed, and the
// production-sized SS512 prime.
var (
	toyP = big.NewInt(103) // 103 ≡ 3 (mod 4), prime
	bigP = mustBig("9dcd7ce9b75c56827987d2cd06c038fce654b15f3d3ab47af8acbcba1119dd614d69b053f14b7b84c1d376f134ab238261cc3c778fa3b94775baff1606d19093")
	toyQ = big.NewInt(13)
	bigQ = mustBig("d1694ad4e9ac2e91c6f6da19ab35094f14637ae3")
)

func mustBig(hex string) *big.Int {
	v, ok := new(big.Int).SetString(hex, 16)
	if !ok {
		panic("bad hex in test fixture")
	}
	return v
}

func mustCtx(t *testing.T, p *big.Int) *Ctx {
	t.Helper()
	c, err := NewCtx(p)
	if err != nil {
		t.Fatalf("NewCtx(%v): %v", p, err)
	}
	return c
}

func TestNewCtxRejectsBadModuli(t *testing.T) {
	cases := []struct {
		name string
		p    *big.Int
	}{
		{"nil", nil},
		{"zero", big.NewInt(0)},
		{"negative", big.NewInt(-7)},
		{"p=1 mod 4", big.NewInt(13)},
		{"even", big.NewInt(10)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewCtx(tc.p); err == nil {
				t.Fatalf("NewCtx(%v) succeeded, want error", tc.p)
			}
		})
	}
}

func randFp2(c *Ctx, rng *mrand.Rand) *Fp2 {
	p := c.P()
	a := new(big.Int).Rand(rng, p)
	b := new(big.Int).Rand(rng, p)
	return c.NewFp2(a, b)
}

func TestFp2FieldAxioms(t *testing.T) {
	for _, p := range []*big.Int{toyP, bigP} {
		c := mustCtx(t, p)
		rng := mrand.New(mrand.NewSource(int64(1) + int64(uint64(p.BitLen()))))
		for i := 0; i < 200; i++ {
			x := randFp2(c, rng)
			y := randFp2(c, rng)
			z := randFp2(c, rng)

			// Commutativity.
			if !c.Fp2Equal(c.Fp2Add(x, y), c.Fp2Add(y, x)) {
				t.Fatal("addition not commutative")
			}
			if !c.Fp2Equal(c.Fp2Mul(x, y), c.Fp2Mul(y, x)) {
				t.Fatal("multiplication not commutative")
			}
			// Associativity.
			if !c.Fp2Equal(c.Fp2Add(c.Fp2Add(x, y), z), c.Fp2Add(x, c.Fp2Add(y, z))) {
				t.Fatal("addition not associative")
			}
			if !c.Fp2Equal(c.Fp2Mul(c.Fp2Mul(x, y), z), c.Fp2Mul(x, c.Fp2Mul(y, z))) {
				t.Fatal("multiplication not associative")
			}
			// Distributivity.
			lhs := c.Fp2Mul(x, c.Fp2Add(y, z))
			rhs := c.Fp2Add(c.Fp2Mul(x, y), c.Fp2Mul(x, z))
			if !c.Fp2Equal(lhs, rhs) {
				t.Fatal("distributivity fails")
			}
			// Identities.
			if !c.Fp2Equal(c.Fp2Add(x, c.Fp2Zero()), x) {
				t.Fatal("additive identity fails")
			}
			if !c.Fp2Equal(c.Fp2Mul(x, c.Fp2One()), x) {
				t.Fatal("multiplicative identity fails")
			}
			// Inverses.
			if !c.Fp2IsZero(c.Fp2Add(x, c.Fp2Neg(x))) {
				t.Fatal("additive inverse fails")
			}
			if !c.Fp2IsZero(x) {
				inv, err := c.Fp2Inv(x)
				if err != nil {
					t.Fatalf("Fp2Inv: %v", err)
				}
				if !c.Fp2IsOne(c.Fp2Mul(x, inv)) {
					t.Fatal("multiplicative inverse fails")
				}
			}
			// Square consistency.
			if !c.Fp2Equal(c.Fp2Square(x), c.Fp2Mul(x, x)) {
				t.Fatal("square != self-multiplication")
			}
			// Conjugation is multiplicative.
			if !c.Fp2Equal(c.Fp2Conj(c.Fp2Mul(x, y)), c.Fp2Mul(c.Fp2Conj(x), c.Fp2Conj(y))) {
				t.Fatal("conjugation not multiplicative")
			}
		}
	}
}

func TestFp2ConjIsFrobenius(t *testing.T) {
	// For p ≡ 3 (mod 4), x^p must equal the conjugate.
	c := mustCtx(t, toyP)
	rng := mrand.New(mrand.NewSource(int64(7) + int64(7)))
	for i := 0; i < 50; i++ {
		x := randFp2(c, rng)
		frob := c.Fp2Exp(x, toyP)
		if !c.Fp2Equal(frob, c.Fp2Conj(x)) {
			t.Fatalf("x^p != conj(x) for %s", c.Fp2String(x))
		}
	}
}

func TestFp2ExpLaws(t *testing.T) {
	c := mustCtx(t, toyP)
	rng := mrand.New(mrand.NewSource(int64(3) + int64(9)))
	for i := 0; i < 50; i++ {
		x := randFp2(c, rng)
		if c.Fp2IsZero(x) {
			continue
		}
		a := big.NewInt(int64(rng.Intn(500)))
		b := big.NewInt(int64(rng.Intn(500)))
		// x^(a+b) == x^a · x^b
		lhs := c.Fp2Exp(x, new(big.Int).Add(a, b))
		rhs := c.Fp2Mul(c.Fp2Exp(x, a), c.Fp2Exp(x, b))
		if !c.Fp2Equal(lhs, rhs) {
			t.Fatal("exponent addition law fails")
		}
		// (x^a)^b == x^(ab)
		lhs = c.Fp2Exp(c.Fp2Exp(x, a), b)
		rhs = c.Fp2Exp(x, new(big.Int).Mul(a, b))
		if !c.Fp2Equal(lhs, rhs) {
			t.Fatal("exponent multiplication law fails")
		}
		// Negative exponent: x^-a = (x^a)^-1.
		inv, err := c.Fp2Inv(c.Fp2Exp(x, a))
		if err != nil {
			t.Fatalf("inverting x^a: %v", err)
		}
		if !c.Fp2Equal(c.Fp2Exp(x, new(big.Int).Neg(a)), inv) {
			t.Fatal("negative exponent law fails")
		}
	}
}

func TestFp2InvZeroErrors(t *testing.T) {
	c := mustCtx(t, toyP)
	if _, err := c.Fp2Inv(c.Fp2Zero()); err == nil {
		t.Fatal("inverse of zero should error")
	}
}

func TestSqrt(t *testing.T) {
	c := mustCtx(t, toyP)
	// Exhaustive over the toy field: every QR has a root, QNRs do not.
	squares := map[int64]bool{}
	for i := int64(0); i < 103; i++ {
		squares[i*i%103] = true
	}
	for a := int64(0); a < 103; a++ {
		y, ok := c.Sqrt(big.NewInt(a))
		if ok != squares[a] {
			t.Fatalf("Sqrt(%d): got ok=%v want %v", a, ok, squares[a])
		}
		if ok {
			yy := new(big.Int).Mul(y, y)
			yy.Mod(yy, toyP)
			if yy.Int64() != a {
				t.Fatalf("Sqrt(%d) = %v does not square back", a, y)
			}
		}
	}
}

func TestRandFpInRange(t *testing.T) {
	c := mustCtx(t, bigP)
	for i := 0; i < 20; i++ {
		v, err := c.RandFp(rand.Reader)
		if err != nil {
			t.Fatalf("RandFp: %v", err)
		}
		if !c.InField(v) {
			t.Fatalf("RandFp produced out-of-range %v", v)
		}
	}
}

func TestScalarFieldOps(t *testing.T) {
	for _, q := range []*big.Int{toyQ, bigQ} {
		sf, err := NewScalarField(q)
		if err != nil {
			t.Fatalf("NewScalarField: %v", err)
		}
		rng := mrand.New(mrand.NewSource(int64(11) + int64(uint64(q.BitLen()))))
		for i := 0; i < 100; i++ {
			a := new(big.Int).Rand(rng, q)
			b := new(big.Int).Rand(rng, q)
			// a + b - b == a
			if sf.Sub(sf.Add(a, b), b).Cmp(sf.Reduce(a)) != 0 {
				t.Fatal("add/sub roundtrip fails")
			}
			// a · b · b⁻¹ == a (b ≠ 0)
			if b.Sign() != 0 {
				binv, err := sf.Inv(b)
				if err != nil {
					t.Fatalf("Inv: %v", err)
				}
				if sf.Mul(sf.Mul(a, b), binv).Cmp(sf.Reduce(a)) != 0 {
					t.Fatal("mul/inv roundtrip fails")
				}
			}
		}
		if _, err := sf.Inv(big.NewInt(0)); err == nil {
			t.Fatal("Inv(0) should error")
		}
	}
}

func TestScalarFieldRejectsBadOrder(t *testing.T) {
	for _, q := range []*big.Int{nil, big.NewInt(0), big.NewInt(-3), big.NewInt(8)} {
		if _, err := NewScalarField(q); err == nil {
			t.Fatalf("NewScalarField(%v) succeeded, want error", q)
		}
	}
}

func TestRandScalarNonzeroAndInRange(t *testing.T) {
	sf, err := NewScalarField(toyQ)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		v, err := sf.Rand(rand.Reader)
		if err != nil {
			t.Fatalf("Rand: %v", err)
		}
		if v.Sign() <= 0 || v.Cmp(toyQ) >= 0 {
			t.Fatalf("scalar %v out of (0,q)", v)
		}
	}
}

func TestHashToScalarProperties(t *testing.T) {
	sf, err := NewScalarField(bigQ)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic.
	a := sf.HashToScalar("d", []byte("hello"))
	b := sf.HashToScalar("d", []byte("hello"))
	if a.Cmp(b) != 0 {
		t.Fatal("HashToScalar not deterministic")
	}
	// Domain separation.
	if sf.HashToScalar("d1", []byte("x")).Cmp(sf.HashToScalar("d2", []byte("x"))) == 0 {
		t.Fatal("domain separation ineffective")
	}
	// Length framing: ("ab","c") must differ from ("a","bc").
	if sf.HashToScalar("d", []byte("ab"), []byte("c")).
		Cmp(sf.HashToScalar("d", []byte("a"), []byte("bc"))) == 0 {
		t.Fatal("length framing ineffective")
	}
	// In range, via quick.
	f := func(data []byte) bool {
		v := sf.HashToScalar("d", data)
		return v.Sign() >= 0 && v.Cmp(bigQ) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatalf("range property: %v", err)
	}
	// NonZero variant never returns zero (trivially: remaps).
	if sf.HashToNonZeroScalar("d", []byte("x")).Sign() == 0 {
		t.Fatal("HashToNonZeroScalar returned zero")
	}
}

func TestHashToScalarDistribution(t *testing.T) {
	// With a tiny q, the reduced output should cover all residues roughly
	// uniformly; a gross bias would indicate a broken expansion.
	sf, err := NewScalarField(toyQ)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 13)
	const trials = 13 * 400
	var msg [8]byte
	for i := 0; i < trials; i++ {
		binary := []byte{byte(i), byte(i >> 8), byte(i >> 16)}
		copy(msg[:], binary)
		counts[sf.HashToScalar("dist", msg[:]).Int64()]++
	}
	for r, n := range counts {
		if n < trials/13/2 || n > trials/13*2 {
			t.Fatalf("residue %d count %d badly skewed (expected ~%d)", r, n, trials/13)
		}
	}
}

func TestFp2StringStable(t *testing.T) {
	c := mustCtx(t, toyP)
	x := c.NewFp2(big.NewInt(5), big.NewInt(7))
	if got := c.Fp2String(x); !bytes.Contains([]byte(got), []byte("5")) {
		t.Fatalf("Fp2String output %q missing coordinate", got)
	}
}
