// Package ff implements the finite-field arithmetic underlying the SecCloud
// pairing: the prime field Fp, its quadratic extension Fp2 = Fp(i) with
// i^2 = -1 (which requires p ≡ 3 mod 4), and helpers for the scalar field Zq.
//
// The package is deliberately parameterized by a Ctx carrying the modulus so
// that tests can exercise the same code paths with tiny toy primes where
// properties can be checked exhaustively.
package ff

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// ErrNotInField reports an element outside the expected range [0, p).
var ErrNotInField = errors.New("ff: element not in field")

// Ctx carries the prime modulus p for Fp and Fp2 arithmetic. A Ctx is
// immutable after construction and safe for concurrent use.
type Ctx struct {
	p *big.Int
}

// NewCtx returns an arithmetic context for the prime field Fp.
// It requires p ≡ 3 (mod 4) so that -1 is a quadratic non-residue and
// Fp2 = Fp(i) with i^2 = -1 is a field.
func NewCtx(p *big.Int) (*Ctx, error) {
	if p == nil || p.Sign() <= 0 {
		return nil, errors.New("ff: modulus must be a positive prime")
	}
	if p.Bit(0) != 1 || p.Bit(1) != 1 {
		return nil, fmt.Errorf("ff: modulus %v is not ≡ 3 (mod 4)", p)
	}
	return &Ctx{p: new(big.Int).Set(p)}, nil
}

// P returns a copy of the field modulus.
func (c *Ctx) P() *big.Int { return new(big.Int).Set(c.p) }

// Norm reduces x into [0, p) in place and returns it.
func (c *Ctx) Norm(x *big.Int) *big.Int { return x.Mod(x, c.p) }

// InField reports whether x is a canonical Fp element in [0, p).
func (c *Ctx) InField(x *big.Int) bool {
	return x != nil && x.Sign() >= 0 && x.Cmp(c.p) < 0
}

// RandFp returns a uniformly random Fp element read from r.
func (c *Ctx) RandFp(r io.Reader) (*big.Int, error) {
	v, err := rand.Int(r, c.p)
	if err != nil {
		return nil, fmt.Errorf("ff: sampling Fp element: %w", err)
	}
	return v, nil
}

// Sqrt computes a square root of a in Fp if one exists, using the
// p ≡ 3 (mod 4) shortcut y = a^((p+1)/4). The second return is false when a
// is a quadratic non-residue.
func (c *Ctx) Sqrt(a *big.Int) (*big.Int, bool) {
	exp := new(big.Int).Add(c.p, big.NewInt(1))
	exp.Rsh(exp, 2)
	y := new(big.Int).Exp(a, exp, c.p)
	chk := new(big.Int).Mul(y, y)
	chk.Mod(chk, c.p)
	am := new(big.Int).Mod(a, c.p)
	if chk.Cmp(am) != 0 {
		return nil, false
	}
	return y, true
}

// Fp2 is an element a + b·i of the quadratic extension Fp(i), i^2 = -1.
// The zero value is not ready for use; obtain elements from a Ctx.
type Fp2 struct {
	A *big.Int // real coefficient
	B *big.Int // imaginary coefficient
}

// NewFp2 returns the element a + b·i, reducing both coordinates mod p.
func (c *Ctx) NewFp2(a, b *big.Int) *Fp2 {
	return &Fp2{
		A: new(big.Int).Mod(a, c.p),
		B: new(big.Int).Mod(b, c.p),
	}
}

// Fp2Zero returns the additive identity of Fp2.
func (c *Ctx) Fp2Zero() *Fp2 { return &Fp2{A: new(big.Int), B: new(big.Int)} }

// Fp2One returns the multiplicative identity of Fp2.
func (c *Ctx) Fp2One() *Fp2 { return &Fp2{A: big.NewInt(1), B: new(big.Int)} }

// Fp2Copy returns a deep copy of x.
func (c *Ctx) Fp2Copy(x *Fp2) *Fp2 {
	return &Fp2{A: new(big.Int).Set(x.A), B: new(big.Int).Set(x.B)}
}

// Fp2IsZero reports whether x is the additive identity.
func (c *Ctx) Fp2IsZero(x *Fp2) bool { return x.A.Sign() == 0 && x.B.Sign() == 0 }

// Fp2IsOne reports whether x is the multiplicative identity.
func (c *Ctx) Fp2IsOne(x *Fp2) bool {
	return x.A.Cmp(big.NewInt(1)) == 0 && x.B.Sign() == 0
}

// Fp2Equal reports whether x and y are the same element.
func (c *Ctx) Fp2Equal(x, y *Fp2) bool {
	return x.A.Cmp(y.A) == 0 && x.B.Cmp(y.B) == 0
}

// Fp2Add returns x + y.
func (c *Ctx) Fp2Add(x, y *Fp2) *Fp2 {
	a := new(big.Int).Add(x.A, y.A)
	a.Mod(a, c.p)
	b := new(big.Int).Add(x.B, y.B)
	b.Mod(b, c.p)
	return &Fp2{A: a, B: b}
}

// Fp2Sub returns x - y.
func (c *Ctx) Fp2Sub(x, y *Fp2) *Fp2 {
	a := new(big.Int).Sub(x.A, y.A)
	a.Mod(a, c.p)
	b := new(big.Int).Sub(x.B, y.B)
	b.Mod(b, c.p)
	return &Fp2{A: a, B: b}
}

// Fp2Neg returns -x.
func (c *Ctx) Fp2Neg(x *Fp2) *Fp2 {
	a := new(big.Int).Neg(x.A)
	a.Mod(a, c.p)
	b := new(big.Int).Neg(x.B)
	b.Mod(b, c.p)
	return &Fp2{A: a, B: b}
}

// Fp2Mul returns x·y using the schoolbook formula
// (a+bi)(c+di) = (ac - bd) + (ad + bc)i.
func (c *Ctx) Fp2Mul(x, y *Fp2) *Fp2 {
	ac := new(big.Int).Mul(x.A, y.A)
	bd := new(big.Int).Mul(x.B, y.B)
	ad := new(big.Int).Mul(x.A, y.B)
	bc := new(big.Int).Mul(x.B, y.A)
	a := ac.Sub(ac, bd)
	a.Mod(a, c.p)
	b := ad.Add(ad, bc)
	b.Mod(b, c.p)
	return &Fp2{A: a, B: b}
}

// Fp2Square returns x² using (a+bi)² = (a-b)(a+b) + 2ab·i.
func (c *Ctx) Fp2Square(x *Fp2) *Fp2 {
	sum := new(big.Int).Add(x.A, x.B)
	diff := new(big.Int).Sub(x.A, x.B)
	a := sum.Mul(sum, diff)
	a.Mod(a, c.p)
	b := new(big.Int).Mul(x.A, x.B)
	b.Lsh(b, 1)
	b.Mod(b, c.p)
	return &Fp2{A: a, B: b}
}

// Fp2Conj returns the conjugate a - b·i. For p ≡ 3 (mod 4) this equals the
// Frobenius endomorphism x ↦ x^p on Fp2.
func (c *Ctx) Fp2Conj(x *Fp2) *Fp2 {
	b := new(big.Int).Neg(x.B)
	b.Mod(b, c.p)
	return &Fp2{A: new(big.Int).Set(x.A), B: b}
}

// Fp2Inv returns x⁻¹. It returns an error when x is zero.
func (c *Ctx) Fp2Inv(x *Fp2) (*Fp2, error) {
	// 1/(a+bi) = (a-bi)/(a²+b²).
	n := new(big.Int).Mul(x.A, x.A)
	bb := new(big.Int).Mul(x.B, x.B)
	n.Add(n, bb)
	n.Mod(n, c.p)
	if n.Sign() == 0 {
		return nil, errors.New("ff: inverse of zero in Fp2")
	}
	n.ModInverse(n, c.p)
	a := new(big.Int).Mul(x.A, n)
	a.Mod(a, c.p)
	b := new(big.Int).Neg(x.B)
	b.Mul(b, n)
	b.Mod(b, c.p)
	return &Fp2{A: a, B: b}, nil
}

// Fp2Exp returns x^k for k ≥ 0 by square-and-multiply.
func (c *Ctx) Fp2Exp(x *Fp2, k *big.Int) *Fp2 {
	if k.Sign() < 0 {
		inv, err := c.Fp2Inv(x)
		if err != nil {
			// x == 0 with negative exponent has no meaning; return zero
			// to keep the API total (callers validate inputs upstream).
			return c.Fp2Zero()
		}
		return c.Fp2Exp(inv, new(big.Int).Neg(k))
	}
	r := c.Fp2One()
	base := c.Fp2Copy(x)
	for i := k.BitLen() - 1; i >= 0; i-- {
		r = c.Fp2Square(r)
		if k.Bit(i) == 1 {
			r = c.Fp2Mul(r, base)
		}
	}
	return r
}

// Fp2MultiExp returns Π xᵢ^kᵢ for kᵢ ≥ 0 with one shared square-and-
// multiply ladder: the accumulator squares once per bit of the longest
// exponent and multiplies in every base whose exponent has that bit set.
// For n bases with b-bit exponents this costs b squarings plus ~nb/2
// multiplications, versus n·b squarings for n separate Fp2Exp calls —
// the Fp2 analogue of a multi-scalar point multiplication. Negative
// exponents are not supported (callers reduce into [0, q) first).
func (c *Ctx) Fp2MultiExp(xs []*Fp2, ks []*big.Int) (*Fp2, error) {
	if len(xs) != len(ks) {
		return nil, fmt.Errorf("ff: mismatched lengths %d vs %d", len(xs), len(ks))
	}
	maxBits := 0
	for _, k := range ks {
		if k.Sign() < 0 {
			return nil, fmt.Errorf("ff: negative exponent in multi-exp")
		}
		if b := k.BitLen(); b > maxBits {
			maxBits = b
		}
	}
	r := c.Fp2One()
	for i := maxBits - 1; i >= 0; i-- {
		r = c.Fp2Square(r)
		for j, k := range ks {
			if k.Bit(i) == 1 {
				r = c.Fp2Mul(r, xs[j])
			}
		}
	}
	return r, nil
}

// Fp2String renders x as "a + b·i" in hexadecimal, for debugging.
func (c *Ctx) Fp2String(x *Fp2) string {
	return fmt.Sprintf("%s + %s·i", x.A.Text(16), x.B.Text(16))
}
