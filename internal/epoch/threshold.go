package epoch

import (
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"reflect"
	"time"

	"seccloud/internal/core"
	"seccloud/internal/ibc"
	"seccloud/internal/netsim"
	"seccloud/internal/obs"
	"seccloud/internal/pairing"
	"seccloud/internal/threshold"
	"seccloud/internal/workload"
)

// Threshold-agency scenario: the designated-verifier key is Shamir-split
// across n auditor share-holders and every epoch's storage audit is
// decided by a t-of-n quorum of partial verifications, while a rotating
// subset of holders is crashed and another subset forges partials. A
// single-DA agency holding the undealt key audits the same trace with
// the same challenge seeds, so every epoch cross-checks that auditor
// faults change WHO computed the verdict, never WHAT the verdict says.

// ThresholdConfig shapes the scenario.
type ThresholdConfig struct {
	// T of N is the quorum shape of the dealt verifier key.
	T, N int
	// Epochs is the number of audit cycles.
	Epochs int
	// Blocks sizes the user's stored dataset.
	Blocks int
	// SampleSize is the per-epoch storage audit sample.
	SampleSize int
	// CrashedHolders is how many share-holders are down during each
	// faulty epoch. The crashed subset rotates every epoch, so quorums
	// keep re-forming from different survivors.
	CrashedHolders int
	// ByzantineHolders is how many live share-holders forge partials
	// during each faulty epoch (caught by commitment proofs, replaced).
	ByzantineHolders int
	// FaultEpoch is the first epoch the crash/Byzantine schedule applies
	// (≤ 1 = from the start).
	FaultEpoch int
	// TamperEpoch, when > 0, rots every stored block at the start of that
	// epoch. Invalid verdicts from then on are detections; any earlier
	// invalid verdict is a false flag.
	TamperEpoch int
	// Workers bounds audit verification concurrency.
	Workers int
	// Seed drives the challenge draws.
	Seed int64
	// Hub receives the audit instruments; nil creates a private hub so
	// Metrics is always registry-derived.
	Hub *obs.Hub
}

func (c *ThresholdConfig) validate() error {
	if c.T < 1 || c.T > c.N {
		return fmt.Errorf("epoch: quorum %d-of-%d invalid", c.T, c.N)
	}
	if c.Epochs <= 0 || c.Blocks <= 0 || c.SampleSize <= 0 {
		return fmt.Errorf("epoch: epochs, blocks and sample size must be positive")
	}
	if c.CrashedHolders < 0 || c.ByzantineHolders < 0 {
		return fmt.Errorf("epoch: fault counts must be non-negative")
	}
	if c.CrashedHolders+c.ByzantineHolders > c.N-c.T {
		return fmt.Errorf("epoch: %d crashed + %d Byzantine holders exceed the n−t=%d fault budget",
			c.CrashedHolders, c.ByzantineHolders, c.N-c.T)
	}
	if c.TamperEpoch < 0 || c.TamperEpoch > c.Epochs {
		return fmt.Errorf("epoch: tamper epoch %d outside 0..%d", c.TamperEpoch, c.Epochs)
	}
	return nil
}

// ThresholdEpochStats summarizes one audit cycle.
type ThresholdEpochStats struct {
	Epoch int
	// Crashed / Byzantine are the 1-based share indices scheduled faulty.
	Crashed   []int
	Byzantine []int
	// Quorum is the share subset whose verified partials decided the
	// epoch's verdict.
	Quorum []int
	// Recoveries counts holders that failed mid-collection and were
	// replaced while still reaching quorum.
	Recoveries int
	// Valid is the threshold agency's verdict.
	Valid bool
	// AgreesWithSingleDA reports the verdict (validity, sample and
	// failure set) matched the undealt-key reference audit.
	AgreesWithSingleDA bool
	// Detection / FalseFlag classify an invalid verdict by the tamper
	// schedule.
	Detection bool
	FalseFlag bool
	// CombinedDigest fingerprints the quorum's combined aggregate check.
	CombinedDigest string
}

// ThresholdMetrics is the registry-derived cross-check of a run.
type ThresholdMetrics struct {
	Audits     int
	Recoveries int
	Byzantine  int
	FalseFlags int
}

// SummarizeThresholdRegistry derives ThresholdMetrics from a snapshot.
func SummarizeThresholdRegistry(s obs.Snapshot) ThresholdMetrics {
	return ThresholdMetrics{
		Audits:     int(s.Total("audits_total", nil)),
		Recoveries: int(s.Total("threshold_quorum_recoveries_total", nil)),
		Byzantine:  int(s.Total("threshold_byzantine_partials_total", nil)),
		FalseFlags: int(s.Total("sim_false_flags_total", nil)),
	}
}

// ThresholdResult is the whole scenario outcome.
type ThresholdResult struct {
	Config ThresholdConfig
	Epochs []ThresholdEpochStats
	// Audits counts completed threshold audits (= Epochs unless a quorum
	// was unavailable, which the config forbids).
	Audits int
	// QuorumRecoveries / ByzantinePartials total the auditor-fault trail.
	QuorumRecoveries  int
	ByzantinePartials int
	// Detections / FalseFlags classify invalid verdicts; FalseFlags must
	// be 0 — auditor faults never become storage accusations.
	Detections int
	FalseFlags int
	// FirstDetectionEpoch is the first epoch that caught the tamper
	// (0 = never).
	FirstDetectionEpoch int
	// VerdictMismatches counts epochs where the quorum verdict diverged
	// from the single-DA reference (must be 0).
	VerdictMismatches int
	// DistinctQuorums counts the different share subsets that decided
	// verdicts across the run.
	DistinctQuorums int
	// Metrics is the registry-derived cross-check.
	Metrics ThresholdMetrics
}

// RunThreshold executes the scenario.
func RunThreshold(cfg ThresholdConfig) (*ThresholdResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	hub := cfg.Hub
	if hub == nil {
		hub = obs.NewHub()
	}
	falseFlags := hub.Counter("sim_false_flags_total").With()

	sio, err := ibc.Setup(pairing.InsecureTest256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	sp := sio.Params()

	// The dealt verifier identity. The single-DA reference holds this key
	// directly; the combiner never sees it.
	const verifierID = "da:threshold"
	verifierKey, err := sio.Extract(verifierID)
	if err != nil {
		return nil, err
	}
	deal, err := threshold.SplitVerifierKey(sp, verifierKey, cfg.T, cfg.N, rand.Reader)
	if err != nil {
		return nil, err
	}
	holders := make([]*threshold.AuditorShare, cfg.N)
	downs := make([]*netsim.DownableHandler, cfg.N)
	shareClients := make([]netsim.Client, cfg.N)
	for i, share := range deal.Shares {
		holders[i] = threshold.NewAuditorShare(sp, share, rand.Reader)
		downs[i] = netsim.NewDownableHandler(holders[i])
		shareClients[i] = netsim.NewLoopback(downs[i], netsim.LinkConfig{})
	}

	combinerKey, err := sio.Extract("da:threshold-combiner")
	if err != nil {
		return nil, err
	}
	combiner, err := core.NewAgency(sp, combinerKey, rand.Reader).
		WithWorkers(cfg.Workers).WithObs(hub).
		WithThreshold(core.ThresholdConfig{Public: deal.Public, Clients: shareClients})
	if err != nil {
		return nil, err
	}
	reference := core.NewAgency(sp, verifierKey, rand.Reader).WithWorkers(cfg.Workers)

	serverKey, err := sio.Extract("cs:threshold-0")
	if err != nil {
		return nil, err
	}
	srv, err := core.NewServer(sp, serverKey, core.ServerConfig{
		Random:  rand.Reader,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	client := netsim.NewLoopback(srv, netsim.LinkConfig{})

	userKey, err := sio.Extract("user:threshold-alice")
	if err != nil {
		return nil, err
	}
	usr := core.NewUser(sp, userKey, rand.Reader)
	gen := workload.NewGenerator(cfg.Seed)
	ds := gen.GenDataset(usr.ID(), cfg.Blocks, 8)
	req, err := usr.PrepareStore(ds, srv.ID(), verifierID)
	if err != nil {
		return nil, err
	}
	if err := usr.Store(client, req); err != nil {
		return nil, err
	}
	warrant, err := usr.Delegate(verifierID, "", time.Now().Add(24*time.Hour))
	if err != nil {
		return nil, err
	}

	res := &ThresholdResult{Config: cfg}
	quorumsSeen := map[string]bool{}
	tampered := false
	for ep := 1; ep <= cfg.Epochs; ep++ {
		stats := ThresholdEpochStats{Epoch: ep}

		if cfg.TamperEpoch > 0 && ep == cfg.TamperEpoch {
			for pos := 0; pos < cfg.Blocks; pos++ {
				if _, ok := srv.TamperBlock(usr.ID(), uint64(pos), []byte("threshold-rot")); !ok {
					return nil, fmt.Errorf("epoch %d: tampering block %d found nothing", ep, pos)
				}
			}
			tampered = true
		}

		// Rotate the fault schedule: crashed holders first, Byzantine
		// holders next, both sliding one index per epoch so successive
		// quorums form from different survivors.
		faulty := cfg.FaultEpoch <= ep || cfg.FaultEpoch <= 1
		for i := range downs {
			downs[i].SetDown(false)
			holders[i].SetByzantine(false)
		}
		if faulty {
			for i := 0; i < cfg.CrashedHolders; i++ {
				idx := (ep - 1 + i) % cfg.N
				downs[idx].SetDown(true)
				stats.Crashed = append(stats.Crashed, idx+1)
			}
			for i := 0; i < cfg.ByzantineHolders; i++ {
				idx := (ep - 1 + cfg.CrashedHolders + i) % cfg.N
				holders[idx].SetByzantine(true)
				stats.Byzantine = append(stats.Byzantine, idx+1)
			}
		}

		// Both agencies draw the identical challenge sample.
		auditCfg := func() core.StorageAuditConfig {
			return core.StorageAuditConfig{
				DatasetSize:     cfg.Blocks,
				SampleSize:      cfg.SampleSize,
				Rng:             mrand.New(mrand.NewSource(cfg.Seed*1009 + int64(ep))),
				BatchSignatures: true,
				Workers:         cfg.Workers,
			}
		}
		report, err := combiner.AuditStorage(client, usr.ID(), warrant, auditCfg())
		if err != nil {
			if errors.Is(err, core.ErrQuorumUnavailable) {
				return nil, fmt.Errorf("epoch %d: quorum unavailable under a within-budget fault schedule: %w", ep, err)
			}
			return nil, fmt.Errorf("epoch %d: threshold audit: %w", ep, err)
		}
		ref, err := reference.AuditStorage(client, usr.ID(), warrant, auditCfg())
		if err != nil {
			return nil, fmt.Errorf("epoch %d: reference audit: %w", ep, err)
		}

		tr := report.Threshold
		if tr == nil {
			return nil, fmt.Errorf("epoch %d: threshold report has no trail", ep)
		}
		stats.Quorum = tr.Quorum
		stats.Recoveries = tr.Recoveries
		stats.CombinedDigest = tr.CombinedDigest
		stats.Valid = report.Valid()
		stats.AgreesWithSingleDA = report.Valid() == ref.Valid() &&
			reflect.DeepEqual(report.Sampled, ref.Sampled) &&
			reflect.DeepEqual(report.Failures, ref.Failures)
		if !stats.AgreesWithSingleDA {
			res.VerdictMismatches++
		}
		if !report.Valid() {
			if tampered {
				stats.Detection = true
				res.Detections++
				if res.FirstDetectionEpoch == 0 {
					res.FirstDetectionEpoch = ep
				}
			} else {
				stats.FalseFlag = true
				res.FalseFlags++
				falseFlags.Inc()
			}
		}
		quorumsSeen[fmt.Sprint(tr.Quorum)] = true
		res.Audits++
		res.QuorumRecoveries += tr.Recoveries
		res.ByzantinePartials += len(tr.Byzantine)
		res.Epochs = append(res.Epochs, stats)
	}
	res.DistinctQuorums = len(quorumsSeen)
	res.Metrics = SummarizeThresholdRegistry(hub.Registry().Snapshot())
	return res, nil
}
