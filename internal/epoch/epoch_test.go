package epoch

import "testing"

func TestValidation(t *testing.T) {
	bad := []Config{
		{},
		{Servers: 3, Corrupted: 3, Epochs: 1, BlocksPerUser: 2, JobsPerEpoch: 1},
		{Servers: 3, Corrupted: -1, Epochs: 1, BlocksPerUser: 2, JobsPerEpoch: 1},
		{Servers: 3, Corrupted: 1, Epochs: 0, BlocksPerUser: 2, JobsPerEpoch: 1},
		{Servers: 3, Corrupted: 1, Epochs: 1, BlocksPerUser: 2, JobsPerEpoch: 1, SampleSize: -1},
		{Servers: 3, Corrupted: 1, Epochs: 1, BlocksPerUser: 2, JobsPerEpoch: 1, CheaterCSC: 2},
		{Servers: 3, Corrupted: 1, Epochs: 1, BlocksPerUser: 2, JobsPerEpoch: 1, CrashEvery: 1},
		{Servers: 3, Corrupted: 1, Epochs: 1, BlocksPerUser: 2, JobsPerEpoch: 1, CrashPoint: "half-way"},
		{Servers: 3, Corrupted: 1, Epochs: 1, BlocksPerUser: 2, JobsPerEpoch: 1, OverloadEvery: 1},
		{Servers: 3, Corrupted: 1, Epochs: 1, BlocksPerUser: 2, JobsPerEpoch: 1, MaxInflight: 1, OfferedLoad: -2},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestHonestFleetNeverFlagged(t *testing.T) {
	// b = 0: no corruption, audits must stay silent and exposure zero.
	res, err := Run(Config{
		Servers: 3, Corrupted: 0, Epochs: 2, BlocksPerUser: 6,
		JobsPerEpoch: 1, SampleSize: 2, CheaterCSC: 0, Seed: 1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.FirstDetectionEpoch != 0 {
		t.Fatalf("honest fleet flagged in epoch %d", res.FirstDetectionEpoch)
	}
	if res.TotalExposure != 0 || res.FalseFlags != 0 {
		t.Fatalf("honest fleet produced exposure %d / false flags %d",
			res.TotalExposure, res.FalseFlags)
	}
}

func TestFullCheaterDetectedImmediately(t *testing.T) {
	// One fully-cheating server on unguessable digests with a meaningful
	// sample: detection must happen in epoch 1, with no false flags.
	res, err := Run(Config{
		Servers: 3, Corrupted: 1, Epochs: 2, BlocksPerUser: 9,
		JobsPerEpoch: 1, SampleSize: 3, CheaterCSC: 0, Seed: 2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.FirstDetectionEpoch != 1 {
		t.Fatalf("first detection in epoch %d, want 1", res.FirstDetectionEpoch)
	}
	if res.FalseFlags != 0 {
		t.Fatalf("audits false-flagged honest servers %d times", res.FalseFlags)
	}
	// Every epoch's flagged set must be inside the corrupted set.
	for _, ep := range res.Epochs {
		corrupted := map[int]bool{}
		for _, c := range ep.CorruptedServers {
			corrupted[c] = true
		}
		for _, f := range ep.FlaggedServers {
			if !corrupted[f] {
				t.Fatalf("epoch %d flagged honest server %d", ep.Epoch, f)
			}
		}
	}
}

func TestNoAuditsMeansExposure(t *testing.T) {
	// SampleSize = 0: the cheater's wrong results reach the user.
	res, err := Run(Config{
		Servers: 2, Corrupted: 1, Epochs: 1, BlocksPerUser: 8,
		JobsPerEpoch: 1, SampleSize: 0, CheaterCSC: 0, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TotalExposure == 0 {
		t.Fatal("full cheater with no audits produced zero exposure")
	}
	if res.FirstDetectionEpoch != 0 {
		t.Fatal("detections recorded without any audits")
	}
}

func TestAuditingReducesExposure(t *testing.T) {
	// Same seed and adversary: a sampled audit regime must expose the
	// user to no more corrupt results than running blind.
	base := Config{
		Servers: 3, Corrupted: 1, Epochs: 2, BlocksPerUser: 9,
		JobsPerEpoch: 1, CheaterCSC: 0, Seed: 4,
	}
	blind := base
	blind.SampleSize = 0
	audited := base
	audited.SampleSize = 3

	resBlind, err := Run(blind)
	if err != nil {
		t.Fatal(err)
	}
	resAudited, err := Run(audited)
	if err != nil {
		t.Fatal(err)
	}
	if resAudited.TotalExposure > resBlind.TotalExposure {
		t.Fatalf("auditing increased exposure: %d > %d",
			resAudited.TotalExposure, resBlind.TotalExposure)
	}
	if resAudited.FirstDetectionEpoch == 0 {
		t.Fatal("audited run never detected the cheater")
	}
}

func TestCrashScheduleRecoversWithoutFalseFlags(t *testing.T) {
	// Every epoch one server is killed at its armed crash point and
	// restarted from its WAL. With an honest fleet, the audits that follow
	// each recovery must keep passing: a crash is never evidence.
	for _, point := range []string{"before-log", "after-log", "mid-snapshot", "torn-tail"} {
		point := point
		t.Run(point, func(t *testing.T) {
			res, err := Run(Config{
				Servers: 3, Corrupted: 0, Epochs: 3, BlocksPerUser: 6,
				JobsPerEpoch: 1, SampleSize: 2, Seed: 6,
				WALDir: t.TempDir(), CrashEvery: 1, CrashPoint: point,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Crashes != 3 || res.Recoveries != 3 {
				t.Fatalf("crashes=%d recoveries=%d, want 3/3", res.Crashes, res.Recoveries)
			}
			if res.FalseFlags != 0 || res.FirstDetectionEpoch != 0 || res.TotalExposure != 0 {
				t.Fatalf("crash-recovery run flagged honest servers: %+v", res)
			}
			for _, ep := range res.Epochs {
				if len(ep.CrashedServers) != 1 {
					t.Fatalf("epoch %d crashed %v, want exactly one server", ep.Epoch, ep.CrashedServers)
				}
				if ep.AuditsRun != ep.JobsRun || ep.JobsRun == 0 {
					t.Fatalf("epoch %d audited %d of %d sub-jobs", ep.Epoch, ep.AuditsRun, ep.JobsRun)
				}
			}
		})
	}
}

func TestCrashScheduleStillDetectsCheaters(t *testing.T) {
	// Crash-recovery must not launder cheating: a full cheater in a fleet
	// under the crash schedule is still detected, with zero false flags.
	res, err := Run(Config{
		Servers: 3, Corrupted: 1, Epochs: 2, BlocksPerUser: 9,
		JobsPerEpoch: 1, SampleSize: 3, CheaterCSC: 0, Seed: 7,
		WALDir: t.TempDir(), CrashEvery: 2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Crashes != 1 || res.Recoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 1/1", res.Crashes, res.Recoveries)
	}
	if res.FirstDetectionEpoch != 1 {
		t.Fatalf("first detection in epoch %d, want 1", res.FirstDetectionEpoch)
	}
	if res.FalseFlags != 0 {
		t.Fatalf("false flags: %d", res.FalseFlags)
	}
}

func TestEpochStatsShape(t *testing.T) {
	res, err := Run(Config{
		Servers: 4, Corrupted: 2, Epochs: 3, BlocksPerUser: 8,
		JobsPerEpoch: 2, SampleSize: 2, CheaterCSC: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("got %d epoch stats, want 3", len(res.Epochs))
	}
	for _, ep := range res.Epochs {
		if len(ep.CorruptedServers) != 2 {
			t.Fatalf("epoch %d has %d corrupted servers, want 2", ep.Epoch, len(ep.CorruptedServers))
		}
		if ep.JobsRun != 2*4 { // 2 jobs × 4 sub-jobs (all servers get a slice)
			t.Fatalf("epoch %d ran %d sub-jobs, want 8", ep.Epoch, ep.JobsRun)
		}
		if ep.AuditsRun != ep.JobsRun {
			t.Fatalf("epoch %d audited %d of %d sub-jobs", ep.Epoch, ep.AuditsRun, ep.JobsRun)
		}
	}
}

// TestFleetKillScheduleZeroFalseFlags is the acceptance scenario: a
// 5-server fleet with a whole-epoch outage every other epoch. Jobs must
// fail over (none lost), every fleet audit must complete its full sample
// by re-issuing rounds, and nothing may be flagged.
func TestFleetKillScheduleZeroFalseFlags(t *testing.T) {
	res, err := Run(Config{
		Servers: 5, Corrupted: 0, Epochs: 4, BlocksPerUser: 8,
		JobsPerEpoch: 1, SampleSize: 2, FleetSampleSize: 4,
		KillEvery: 2, Seed: 5,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Kills != 2 {
		t.Fatalf("kills = %d, want 2", res.Kills)
	}
	if res.JobsFailed != 0 {
		t.Fatalf("%d jobs lost despite CSP failover", res.JobsFailed)
	}
	if res.JobFailovers == 0 {
		t.Fatal("no sub-job ever failed over during an outage")
	}
	if res.FleetAudits != 4*5 {
		t.Fatalf("fleet audits = %d, want %d", res.FleetAudits, 4*5)
	}
	if res.FleetFailovers == 0 {
		t.Fatal("no fleet audit round ever failed over during an outage")
	}
	if res.FleetAvailability() != 1 {
		t.Fatalf("fleet availability %v < 1: an outage degraded an audit", res.FleetAvailability())
	}
	if res.FalseFlags != 0 || res.FirstDetectionEpoch != 0 ||
		res.LocalizedVerdicts+res.ProviderWideVerdicts+res.InconclusiveVerdicts != 0 {
		t.Fatalf("outages produced accusations: %+v", res)
	}
}

// TestFleetBadReplicaLocalizedAndRepaired injects silent rot on one
// replica mid-run. The quorum must classify it as localized (never
// provider-wide), repair must heal it, and every later fleet audit must
// pass — all with zero false flags against the other replicas.
func TestFleetBadReplicaLocalizedAndRepaired(t *testing.T) {
	res, err := Run(Config{
		Servers: 4, Corrupted: 0, Epochs: 4, BlocksPerUser: 8,
		JobsPerEpoch: 1, SampleSize: 2,
		FleetSampleSize: 8, // full sample: every rotten block is challenged
		Repair:          true,
		BadReplicaEpoch: 2, BadReplica: 1, BadBlocks: 3,
		Seed: 7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.FalseFlags != 0 {
		t.Fatalf("false flags = %d, want 0", res.FalseFlags)
	}
	if res.LocalizedVerdicts == 0 {
		t.Fatal("injected single-replica rot was never classified as localized")
	}
	if res.ProviderWideVerdicts != 0 {
		t.Fatalf("single-replica rot misclassified as provider-wide %d times", res.ProviderWideVerdicts)
	}
	if res.RepairsConfirmed == 0 {
		t.Fatal("no repair was confirmed")
	}
	// After the repair epoch, the fleet must be clean again: no further
	// quorums, and the repaired replica passes its primary audits.
	for _, ep := range res.Epochs {
		if ep.Epoch <= 2 {
			continue
		}
		if ep.LocalizedVerdicts+ep.ProviderWideVerdicts+ep.InconclusiveVerdicts != 0 {
			t.Fatalf("epoch %d still produced quorum verdicts after repair: %+v", ep.Epoch, ep)
		}
	}
}

// TestFleetKillPlusBadReplica combines an outage schedule with the rot
// injection: failover and repair must compose without false flags.
func TestFleetKillPlusBadReplica(t *testing.T) {
	res, err := Run(Config{
		Servers: 5, Corrupted: 0, Epochs: 5, BlocksPerUser: 6,
		JobsPerEpoch: 1, SampleSize: 2, FleetSampleSize: 6,
		KillEvery: 2, Repair: true,
		BadReplicaEpoch: 3, BadReplica: 2, BadBlocks: 2,
		Seed: 11,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.FalseFlags != 0 {
		t.Fatalf("false flags = %d, want 0", res.FalseFlags)
	}
	if res.LocalizedVerdicts == 0 || res.RepairsConfirmed == 0 {
		t.Fatalf("rot not localized (%d) or not repaired (%d)",
			res.LocalizedVerdicts, res.RepairsConfirmed)
	}
	if res.FleetAvailability() != 1 {
		t.Fatalf("fleet availability %v < 1", res.FleetAvailability())
	}
	if res.JobsFailed != 0 {
		t.Fatalf("%d jobs lost despite failover", res.JobsFailed)
	}
}
