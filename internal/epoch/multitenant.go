package epoch

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"strings"
	"time"

	"seccloud/internal/core"
	"seccloud/internal/costmodel"
	"seccloud/internal/funcs"
	"seccloud/internal/ibc"
	"seccloud/internal/netsim"
	"seccloud/internal/obs"
	"seccloud/internal/pairing"
	"seccloud/internal/sampling"
	"seccloud/internal/workload"
)

// MultiTenantConfig shapes a multi-tenant audit simulation: a registered
// population of 10⁵–10⁶ identities, a Zipf-skewed open-loop session
// arrival trace per epoch, and the agency's long-lived scheduler draining
// each epoch's queue with cross-tenant aggregate signature verification.
type MultiTenantConfig struct {
	// Tenants is the registered identity count (the population, not the
	// working set — only trace-hit tenants are ever materialized).
	Tenants int
	// SessionsPerEpoch is the open-loop audit session arrival count drawn
	// from the Zipf trace each epoch.
	SessionsPerEpoch int
	// Epochs is the number of drain cycles.
	Epochs int
	// ZipfS is the traffic skew exponent (> 1).
	ZipfS float64
	// BlocksPerTenant sizes each materialized tenant's dataset (≤ 0 = 8).
	BlocksPerTenant int
	// SampleSize, when > 0, overrides every tenant's audit budget; 0 lets
	// each tenant carry its Theorem-3 budget from the cost model.
	SampleSize int
	// Workers bounds the scheduler's drain concurrency (never changes
	// report contents).
	Workers int
	// CrossTenantBatch folds every drained session's signature checks into
	// shared §VI aggregates; off is the per-tenant baseline.
	CrossTenantBatch bool
	// FlushLimit caps signatures per cross-tenant aggregate (≤ 0 = one
	// flush per drain).
	FlushLimit int
	// TamperEpoch, when > 0, rots every stored block of the tenant at Zipf
	// rank TamperRank at the start of that epoch. Accusations against that
	// tenant afterwards are detections; any other accusation, ever, is a
	// false flag.
	TamperEpoch int
	// TamperRank is the Zipf rank (= tenant index; 0 is the traffic head)
	// of the tampered tenant.
	TamperRank int
	// Seed drives the Zipf trace, dataset synthesis and challenge draws.
	Seed int64
	// Hub receives scheduler and registry instruments; nil creates a
	// private hub so Metrics is always registry-derived.
	Hub *obs.Hub
}

func (c *MultiTenantConfig) blocksPerTenant() int {
	if c.BlocksPerTenant <= 0 {
		return 8
	}
	return c.BlocksPerTenant
}

func (c *MultiTenantConfig) validate() error {
	if c.Tenants < 2 {
		return fmt.Errorf("epoch: multi-tenant population must be ≥ 2, got %d", c.Tenants)
	}
	if c.SessionsPerEpoch <= 0 || c.Epochs <= 0 {
		return fmt.Errorf("epoch: sessions per epoch and epochs must be positive")
	}
	if c.ZipfS <= 1 {
		return fmt.Errorf("epoch: zipf exponent must exceed 1, got %v", c.ZipfS)
	}
	if c.SampleSize < 0 || c.FlushLimit < 0 || c.Workers < 0 {
		return fmt.Errorf("epoch: sample size, flush limit and workers must be non-negative")
	}
	if c.TamperEpoch < 0 || c.TamperEpoch > c.Epochs {
		return fmt.Errorf("epoch: tamper epoch %d outside 0..%d", c.TamperEpoch, c.Epochs)
	}
	if c.TamperEpoch > 0 && (c.TamperRank < 0 || c.TamperRank >= c.Tenants) {
		return fmt.Errorf("epoch: tamper rank %d outside the population of %d", c.TamperRank, c.Tenants)
	}
	return nil
}

// MultiTenantEpochStats summarizes one drain cycle.
type MultiTenantEpochStats struct {
	Epoch int
	// Sessions is the number of audit sessions drained.
	Sessions int
	// DistinctTenants is how many different tenants the trace hit.
	DistinctTenants int
	// NewTenants is how many tenants were materialized (onboarded) this
	// epoch — first-touch cost, paid once per tenant ever.
	NewTenants int
	// Flushes / BatchedSigItems / BlameFallbacks mirror the drain report.
	Flushes         int
	BatchedSigItems int
	BlameFallbacks  int
	// Detections counts accusations against the tampered tenant.
	Detections int
	// FalseFlags counts accusations against honest tenants (must be 0).
	FalseFlags int
}

// MultiTenantMetrics is the registry-derived cross-check of a run.
type MultiTenantMetrics struct {
	Sessions   int
	Flushes    int
	SigItems   int
	Fallbacks  int
	Registered int
}

// SummarizeTenantRegistry derives MultiTenantMetrics from a snapshot.
func SummarizeTenantRegistry(s obs.Snapshot) MultiTenantMetrics {
	return MultiTenantMetrics{
		Sessions:   int(s.Total("tenant_audit_sessions_total", nil)),
		Flushes:    int(s.Total("tenant_sig_flushes_total", nil)),
		SigItems:   int(s.Total("tenant_sig_items_total", nil)),
		Fallbacks:  int(s.Total("tenant_blame_fallbacks_total", nil)),
		Registered: int(s.Total("tenants_registered", nil)),
	}
}

// MultiTenantResult is the whole multi-tenant simulation outcome.
type MultiTenantResult struct {
	Config MultiTenantConfig
	Epochs []MultiTenantEpochStats
	// RegisteredTenants is the full population size (registry entries).
	RegisteredTenants int
	// MaterializedTenants counts tenants the traffic actually onboarded —
	// bounded by total sessions, not by the population.
	MaterializedTenants int
	// SessionsRun totals drained sessions across epochs.
	SessionsRun int
	// Flushes / BatchedSigItems / BlameFallbacks total the drain counters.
	Flushes         int
	BatchedSigItems int
	BlameFallbacks  int
	// Detections totals accusations against the tampered tenant.
	Detections int
	// FalseFlags totals accusations against honest tenants (must be 0).
	FalseFlags int
	// FirstDetectionEpoch is the first epoch that accused the tampered
	// tenant (0 = never).
	FirstDetectionEpoch int
	// Elapsed is the DA-side wall time summed over drains.
	Elapsed time.Duration
	// Fingerprint concatenates every drain's deterministic fingerprint;
	// byte-identical across worker counts for a fixed seed.
	Fingerprint string
	// Metrics is the registry-derived cross-check.
	Metrics MultiTenantMetrics
}

// RunMultiTenant executes the multi-tenant simulation: register the whole
// population up front (cheap — no pairings), then per epoch draw the Zipf
// session trace, lazily onboard first-touched tenants, enqueue one
// scheduler session per arrival, and drain.
func RunMultiTenant(cfg MultiTenantConfig) (*MultiTenantResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	hub := cfg.Hub
	if hub == nil {
		hub = obs.NewHub()
	}

	sio, err := ibc.Setup(pairing.InsecureTest256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	sp := sio.Params()
	daKey, err := sio.Extract("da:multitenant")
	if err != nil {
		return nil, err
	}
	agency := core.NewAgency(sp, daKey, rand.Reader).WithWorkers(cfg.Workers).WithObs(hub)
	serverID := "cs:multitenant-0"
	serverKey, err := sio.Extract(serverID)
	if err != nil {
		return nil, err
	}
	srv, err := core.NewServer(sp, serverKey, core.ServerConfig{
		Random:  rand.Reader,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	client := netsim.NewLoopback(srv, netsim.LinkConfig{}).WithObs(hub)

	source, err := workload.NewMultiTenant(cfg.Seed, workload.MultiTenantConfig{
		Tenants:         cfg.Tenants,
		Sessions:        cfg.SessionsPerEpoch,
		ZipfS:           cfg.ZipfS,
		BlocksPerTenant: cfg.blocksPerTenant(),
	})
	if err != nil {
		return nil, err
	}

	registry := core.NewTenantRegistry(256).WithObs(hub)
	sched := core.NewAuditScheduler(agency, registry, core.SchedulerConfig{
		Workers:          cfg.Workers,
		CrossTenantBatch: cfg.CrossTenantBatch,
		FlushLimit:       cfg.FlushLimit,
		SampleSize:       cfg.SampleSize,
		Rng:              mrand.New(mrand.NewSource(cfg.Seed + 1)),
	}).WithObs(hub)

	// Register the whole population. Registration is a map entry plus a
	// Theorem-3 budget — no keys, no datasets, no pairings — which is what
	// makes a 10⁵–10⁶ identity registry affordable. The per-tenant budget
	// prices each tenant's dataset into the optimal sample size.
	budgetBase := sampling.CostParams{
		A1: 1, A2: 1, A3: 1,
		CTrans: 0.5, CComp: 1,
		Q: 0.95,
	}
	blocks := cfg.blocksPerTenant()
	budget := cfg.SampleSize
	if budget <= 0 {
		budget, err = costmodel.TenantBudget(budgetBase, blocks, 1.0, 2)
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Tenants; i++ {
		registry.Register(source.TenantID(i), blocks, budget)
	}

	// onboard materializes tenant rank i: extract its key, synthesize and
	// store its dataset, run one computing job, delegate its audit to the
	// DA, and validate the delegation once at the scheduler.
	onboarded := make(map[int]bool)
	onboard := func(i int) error {
		id := source.TenantID(i)
		key, err := sio.Extract(id)
		if err != nil {
			return err
		}
		usr := core.NewUser(sp, key, rand.Reader)
		ds := source.TenantDataset(i)
		req, err := usr.PrepareStore(ds, serverID, agency.ID())
		if err != nil {
			return err
		}
		if err := usr.Store(client, req); err != nil {
			return err
		}
		jobID := fmt.Sprintf("job-%08d", i)
		job := workload.UniformJob(id, funcs.Spec{Name: "sum"}, blocks)
		resp, err := usr.SubmitJob(client, jobID, job)
		if err != nil {
			return err
		}
		warrant, err := usr.Delegate(agency.ID(), jobID, time.Now().Add(24*time.Hour))
		if err != nil {
			return err
		}
		d := &core.JobDelegation{
			UserID:   id,
			ServerID: resp.ServerID,
			JobID:    jobID,
			Tasks:    core.TasksToWire(job),
			Results:  resp.Results,
			Root:     resp.Root,
			RootSig:  resp.RootSig,
			Warrant:  warrant,
		}
		if err := sched.Onboard(client, d, budget); err != nil {
			return err
		}
		onboarded[i] = true
		return nil
	}

	res := &MultiTenantResult{Config: cfg, RegisteredTenants: registry.Len()}
	var fp strings.Builder
	tampered := -1
	for ep := 1; ep <= cfg.Epochs; ep++ {
		stats := MultiTenantEpochStats{Epoch: ep}

		// The tamper injection: rot every stored block of the ranked tenant
		// so its block signatures stop matching the data the server serves.
		// The tenant is materialized first if the traffic never touched it.
		if cfg.TamperEpoch > 0 && ep == cfg.TamperEpoch {
			if !onboarded[cfg.TamperRank] {
				if err := onboard(cfg.TamperRank); err != nil {
					return nil, fmt.Errorf("epoch %d: materializing tamper target: %w", ep, err)
				}
				stats.NewTenants++
			}
			id := source.TenantID(cfg.TamperRank)
			for pos := 0; pos < blocks; pos++ {
				rotten := []byte("multitenant-rot")
				if _, ok := srv.TamperBlock(id, uint64(pos), rotten); !ok {
					return nil, fmt.Errorf("epoch %d: tampering block %d of %s found nothing", ep, pos, id)
				}
			}
			tampered = cfg.TamperRank
		}

		trace := source.SessionTrace()
		stats.Sessions = len(trace)
		stats.DistinctTenants = workload.DistinctTenants(trace)
		for _, idx := range trace {
			if !onboarded[idx] {
				if err := onboard(idx); err != nil {
					return nil, fmt.Errorf("epoch %d: onboarding tenant %d: %w", ep, idx, err)
				}
				stats.NewTenants++
			}
			sched.Enqueue(source.TenantID(idx))
		}

		rep, err := sched.Drain()
		if err != nil {
			return nil, fmt.Errorf("epoch %d: drain: %w", ep, err)
		}
		stats.Flushes = rep.Flushes
		stats.BatchedSigItems = rep.BatchedSigItems
		stats.BlameFallbacks = rep.BlameFallbacks
		tamperedID := ""
		if tampered >= 0 {
			tamperedID = source.TenantID(tampered)
		}
		for i := range rep.Verdicts {
			v := &rep.Verdicts[i]
			if v.Report.Valid() {
				continue
			}
			if v.UserID == tamperedID {
				stats.Detections++
			} else {
				stats.FalseFlags++
			}
		}
		fp.WriteString(rep.Fingerprint())

		res.SessionsRun += stats.Sessions
		res.Flushes += stats.Flushes
		res.BatchedSigItems += stats.BatchedSigItems
		res.BlameFallbacks += stats.BlameFallbacks
		res.Detections += stats.Detections
		res.FalseFlags += stats.FalseFlags
		res.Elapsed += rep.Elapsed
		if stats.Detections > 0 && res.FirstDetectionEpoch == 0 {
			res.FirstDetectionEpoch = ep
		}
		res.Epochs = append(res.Epochs, stats)
	}
	res.MaterializedTenants = len(onboarded)
	res.Fingerprint = fp.String()
	res.Metrics = SummarizeTenantRegistry(hub.Registry().Snapshot())
	return res, nil
}
