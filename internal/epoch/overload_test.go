package epoch

import (
	"testing"
	"time"
)

func overloadBase() Config {
	return Config{
		Servers: 3, Corrupted: 0, Epochs: 3, BlocksPerUser: 8,
		JobsPerEpoch: 1, SampleSize: 2, Seed: 21,
		MaxInflight: 1, QueueLimit: 1, ServiceTime: time.Millisecond,
		OverloadEvery: 2, OfferedLoad: 6,
		AuditDeadline:     10 * time.Second,
		RetryBudgetTokens: 6,
		DegradeSampling:   true,
		FleetSampleSize:   3,
		HedgeFleetRounds:  true,
	}
}

// TestOverloadScheduleNeverFalseFlags: sustained open-loop overload on an
// honest fleet with the full protection stack (bounded queues, deadline,
// retry budget, degradation, hedging). Requests are shed — server-side
// and inside audit rounds — but an overloaded server is busy, not
// cheating: zero detections, zero false flags, registry agrees.
func TestOverloadScheduleNeverFalseFlags(t *testing.T) {
	res, err := Run(overloadBase())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.FalseFlags != 0 || res.FirstDetectionEpoch != 0 {
		t.Fatalf("overload produced accusations: falseFlags=%d firstDetection=%d",
			res.FalseFlags, res.FirstDetectionEpoch)
	}
	if res.Metrics.FalseFlags != 0 {
		t.Fatalf("registry counted %d false flags", res.Metrics.FalseFlags)
	}
	if res.BurstsFired == 0 {
		t.Fatal("the overload schedule never fired a background request")
	}
	if res.RequestsShed == 0 {
		t.Fatal("bounded admission queues never shed under 6x offered load")
	}
	if res.MaxQueueDepth > 1 {
		t.Fatalf("queue depth %d exceeded the configured limit 1", res.MaxQueueDepth)
	}
	// The overload schedule only pressures even epochs; the calm epochs
	// must see full-quality audits.
	for _, ep := range res.Epochs {
		if ep.Epoch%2 == 0 {
			if ep.BurstFired == 0 {
				t.Fatalf("epoch %d was scheduled for overload but fired no burst", ep.Epoch)
			}
			continue
		}
		if ep.BurstFired != 0 {
			t.Fatalf("calm epoch %d fired %d burst requests", ep.Epoch, ep.BurstFired)
		}
		if ep.JobsFailed != 0 {
			t.Fatalf("calm epoch %d lost %d jobs", ep.Epoch, ep.JobsFailed)
		}
	}
}

// TestOverloadUnboundedQueueBaseline: the unprotected server (negative
// QueueLimit = unbounded FIFO) never sheds — its queue just grows past
// any bound the protected configuration would have enforced.
func TestOverloadUnboundedQueueBaseline(t *testing.T) {
	cfg := overloadBase()
	cfg.Epochs = 2
	cfg.QueueLimit = -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.RequestsShed != 0 {
		t.Fatalf("unbounded queue shed %d requests", res.RequestsShed)
	}
	if res.MaxQueueDepth <= 1 {
		t.Fatalf("unbounded queue depth peaked at %d — overload never queued", res.MaxQueueDepth)
	}
	if res.FalseFlags != 0 {
		t.Fatalf("false flags = %d, want 0", res.FalseFlags)
	}
}

// TestOverloadDoesNotLaunderCheating: a full cheater in a calm epoch is
// still detected even though other epochs run under overload pressure.
func TestOverloadDoesNotLaunderCheating(t *testing.T) {
	cfg := overloadBase()
	cfg.Corrupted = 1
	cfg.CheaterCSC = 0
	cfg.SampleSize = 3
	cfg.BlocksPerUser = 9
	cfg.Epochs = 2
	cfg.Seed = 2 // same adversary walk as TestFullCheaterDetectedImmediately
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.FirstDetectionEpoch == 0 {
		t.Fatal("cheater never detected under the overload schedule")
	}
	if res.FalseFlags != 0 {
		t.Fatalf("false flags = %d, want 0", res.FalseFlags)
	}
}
