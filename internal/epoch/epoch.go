// Package epoch simulates SecCloud deployments over time under the
// paper's mobile-adversary model (§III-B, following HAIL [17]): "our
// adversary controls at most b servers for any given epoch". Each epoch,
// the adversary (re)selects which servers it corrupts and with what
// strategy; the user keeps submitting jobs through the CSP; the DA audits
// with a configurable per-epoch sampling budget.
//
// The simulation measures what the paper's analysis promises but never
// plots: how quickly a sampling auditor detects corruption, how many
// wrong results slip through before detection, and how the audit budget
// trades off against exposure.
package epoch

import (
	"context"
	"crypto/rand"
	"fmt"
	"math"
	mrand "math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"seccloud/internal/core"
	"seccloud/internal/funcs"
	"seccloud/internal/ibc"
	"seccloud/internal/netsim"
	"seccloud/internal/obs"
	"seccloud/internal/ops"
	"seccloud/internal/pairing"
	"seccloud/internal/sampling"
	"seccloud/internal/store"
	"seccloud/internal/wire"
	"seccloud/internal/workload"
)

// Config shapes a simulation run.
type Config struct {
	// Servers is the fleet size n.
	Servers int
	// Corrupted is the adversary's per-epoch budget b (b < n).
	Corrupted int
	// Epochs is the number of simulated epochs.
	Epochs int
	// BlocksPerUser is the outsourced dataset size.
	BlocksPerUser int
	// JobsPerEpoch is how many computing jobs run per epoch.
	JobsPerEpoch int
	// SampleSize is the DA's per-sub-job audit budget t (0 = no audits,
	// pure exposure measurement).
	SampleSize int
	// CheaterCSC is the corrupted servers' computing confidence (they
	// guess the remaining fraction).
	CheaterCSC float64
	// Seed drives server selection, workloads and sampling.
	Seed int64
	// Workers bounds the DA's audit verification pool and each server's
	// store/compute hashing pool (0 or 1 = sequential). Worker count never
	// changes simulation outcomes, only wall-clock time.
	Workers int

	// FaultDrop is the per-message-leg drop probability on every server
	// link (the network-failure adversary).
	FaultDrop float64
	// FaultCorrupt is the per-leg frame-corruption probability.
	FaultCorrupt float64
	// FaultDelay, when non-zero, is extra modeled latency charged to
	// every message leg.
	FaultDelay time.Duration
	// RetryAttempts is the per-message retry budget when faults are on;
	// 0 picks a default sized to survive the configured loss rate.
	RetryAttempts int

	// WALDir, when non-empty, gives every server crash-safe durability: a
	// per-server WAL+snapshot directory under this root. Syncs are elided
	// (NoSync) — the simulation injects process crashes, not power loss.
	WALDir string
	// SnapshotEvery is each server's log-compaction cadence (records per
	// snapshot); 0 picks a default. Forced to 1 when CrashPoint is
	// "mid-snapshot" so the armed crash always finds a snapshot to die in.
	SnapshotEvery int
	// CrashEvery, when > 0, kills one server (round-robin) at the start of
	// every CrashEvery-th epoch and restarts it from its WAL directory, so
	// recovery itself runs under audit pressure. Requires WALDir.
	CrashEvery int
	// CrashPoint names where in the durability pipeline the injected crash
	// fires ("before-log", "after-log", "mid-snapshot", "torn-tail");
	// empty means "after-log".
	CrashPoint string

	// KillEvery, when > 0, takes one server (round-robin) down for the
	// WHOLE of every KillEvery-th epoch: requests to it drop at the
	// transport, jobs fail over to live replicas, and fleet audits must
	// complete by re-issuing rounds elsewhere. Unlike CrashEvery this
	// models an outage/partition, not a process death — no WAL needed,
	// the server returns at the end of the epoch with its state intact.
	KillEvery int
	// FleetSampleSize, when > 0, runs one fleet storage audit per server
	// per epoch (each server takes a turn as primary) with this sampling
	// budget, exercising failover, quorum cross-examination, and repair.
	FleetSampleSize int
	// QuorumK is the witness count for cross-examining a BadProof
	// (0 = default 2).
	QuorumK int
	// Repair executes audit-driven repair for localized corruption.
	Repair bool
	// BadReplicaEpoch, when > 0, silently corrupts BadBlocks blocks on
	// server BadReplica at the start of that epoch — the single-bad-
	// replica scenario the quorum must classify as localized (and, with
	// Repair set, heal).
	BadReplicaEpoch int
	// BadReplica is the replica the corruption lands on.
	BadReplica int
	// BadBlocks is how many blocks (positions 0..BadBlocks-1) rot.
	BadBlocks int

	// MaxInflight, when > 0, puts every server behind an admission gate
	// bounding concurrent request execution — the finite capacity that
	// makes overload real. Required by the overload schedule.
	MaxInflight int
	// QueueLimit bounds the waiters behind each server's inflight slots.
	// 0 sheds immediately when all slots are busy; a negative value is an
	// UNBOUNDED FIFO queue — the unprotected baseline whose latency grows
	// with its backlog. Only meaningful with MaxInflight > 0.
	QueueLimit int
	// ServiceTime charges every server request this much real wall-clock
	// time, so admission gates see genuine occupancy under bursts.
	ServiceTime time.Duration
	// OverloadEvery, when > 0, fires an open-loop burst of background
	// requests at every server at the start of every OverloadEvery-th
	// epoch — issued without waiting for replies, exactly the arrival
	// pattern admission control exists for. Requires MaxInflight > 0.
	OverloadEvery int
	// OfferedLoad sizes the burst as a multiple of the fleet's concurrent
	// capacity (Servers × MaxInflight): 1.0 exactly fills every execution
	// slot, 4.0 is a 4× overload. 0 defaults to 4.
	OfferedLoad float64
	// AuditDeadline, when > 0, bounds each audit's wall clock; expired
	// work is cancelled or skipped, never executed late.
	AuditDeadline time.Duration
	// RetryBudgetTokens, when > 0, shares one token-bucket retry budget
	// (10% refund ratio) across all audits of the run, so correlated
	// failures cannot multiply offered load by MaxAttempts.
	RetryBudgetTokens int
	// DegradeSampling lets the DA shrink audit samples along the
	// Theorem-3 curve when the recent shed/timeout rate crosses the
	// overload threshold, stamping reduced confidence into evidence.
	DegradeSampling bool
	// HedgeFleetRounds duplicates slow fleet audit challenge rounds to a
	// second healthy replica after the fleet's p95 delay; first answer
	// wins, the loser is cancelled.
	HedgeFleetRounds bool

	// Hub receives the simulation's metrics and audit traces: transport
	// latency/fault counters, per-round audit verdicts, breaker states,
	// WAL instruments, and crypto op counts. Nil creates a private hub, so
	// Result.Metrics is always registry-derived. A shared hub accumulates
	// across runs; derive per-run deltas from Result.Metrics instead.
	Hub *obs.Hub
}

// overloadEnabled reports whether the open-loop burst schedule is active.
func (c *Config) overloadEnabled() bool { return c.OverloadEvery > 0 }

// burstRequests is the per-burst request count.
func (c *Config) burstRequests() int {
	load := c.OfferedLoad
	if load <= 0 {
		load = 4
	}
	return int(math.Round(load * float64(c.Servers*c.MaxInflight)))
}

// fleetEnabled reports whether the fleet-robustness layer is active.
func (c *Config) fleetEnabled() bool {
	return c.KillEvery > 0 || c.FleetSampleSize > 0 || c.BadReplicaEpoch > 0
}

// faultsEnabled reports whether the network-failure adversary is active.
func (c *Config) faultsEnabled() bool {
	return c.FaultDrop > 0 || c.FaultCorrupt > 0 || c.FaultDelay > 0
}

// retryAttempts sizes the retry budget.
func (c *Config) retryAttempts() int {
	if c.RetryAttempts > 0 {
		return c.RetryAttempts
	}
	if !c.faultsEnabled() {
		return 1
	}
	return 8
}

func (c *Config) validate() error {
	if c.Servers <= 0 || c.Corrupted < 0 || c.Corrupted >= c.Servers {
		return fmt.Errorf("epoch: need 0 ≤ corrupted < servers, got %d/%d", c.Corrupted, c.Servers)
	}
	if c.Epochs <= 0 || c.BlocksPerUser <= 0 || c.JobsPerEpoch <= 0 {
		return fmt.Errorf("epoch: epochs, blocks and jobs must be positive")
	}
	if c.SampleSize < 0 {
		return fmt.Errorf("epoch: negative sample size %d", c.SampleSize)
	}
	if c.CheaterCSC < 0 || c.CheaterCSC > 1 {
		return fmt.Errorf("epoch: cheater CSC %v outside [0,1]", c.CheaterCSC)
	}
	if c.FaultDrop < 0 || c.FaultDrop > 1 || c.FaultCorrupt < 0 || c.FaultCorrupt > 1 {
		return fmt.Errorf("epoch: fault rates must be in [0,1], got drop=%v corrupt=%v",
			c.FaultDrop, c.FaultCorrupt)
	}
	if c.FaultDelay < 0 {
		return fmt.Errorf("epoch: negative fault delay %v", c.FaultDelay)
	}
	if c.CrashEvery < 0 || c.SnapshotEvery < 0 {
		return fmt.Errorf("epoch: crash/snapshot cadences must be non-negative")
	}
	if c.CrashEvery > 0 && c.WALDir == "" {
		return fmt.Errorf("epoch: crash injection requires a WAL directory")
	}
	if c.KillEvery < 0 || c.FleetSampleSize < 0 || c.BadReplicaEpoch < 0 {
		return fmt.Errorf("epoch: fleet cadences must be non-negative")
	}
	if c.BadReplicaEpoch > 0 {
		if c.BadReplica < 0 || c.BadReplica >= c.Servers {
			return fmt.Errorf("epoch: bad replica %d outside the fleet of %d", c.BadReplica, c.Servers)
		}
		if c.BadBlocks <= 0 || c.BadBlocks > c.BlocksPerUser {
			return fmt.Errorf("epoch: bad blocks %d outside 1..%d", c.BadBlocks, c.BlocksPerUser)
		}
	}
	if _, ok := store.CrashPointByName(c.crashPoint()); !ok {
		return fmt.Errorf("epoch: unknown crash point %q", c.CrashPoint)
	}
	if c.MaxInflight < 0 || c.ServiceTime < 0 || c.OverloadEvery < 0 ||
		c.OfferedLoad < 0 || c.AuditDeadline < 0 || c.RetryBudgetTokens < 0 {
		return fmt.Errorf("epoch: overload knobs must be non-negative")
	}
	if c.OverloadEvery > 0 && c.MaxInflight <= 0 {
		return fmt.Errorf("epoch: the overload schedule requires MaxInflight > 0 (finite server capacity)")
	}
	return nil
}

// crashPoint resolves the configured crash point name.
func (c *Config) crashPoint() string {
	if c.CrashPoint == "" {
		return store.CrashAfterLog.String()
	}
	return c.CrashPoint
}

// snapshotEvery resolves the compaction cadence.
func (c *Config) snapshotEvery() int {
	if c.crashPoint() == store.CrashMidSnapshot.String() {
		return 1 // every append must make a snapshot due, or the crash never fires
	}
	if c.SnapshotEvery > 0 {
		return c.SnapshotEvery
	}
	return 8
}

// EpochStats summarizes one epoch.
type EpochStats struct {
	// Epoch is the 1-based epoch number.
	Epoch int
	// CorruptedServers are the adversary's picks this epoch.
	CorruptedServers []int
	// JobsRun is the number of sub-jobs executed.
	JobsRun int
	// AuditsRun is the number of sub-job audits executed.
	AuditsRun int
	// Detections is the number of audits that flagged cheating.
	Detections int
	// FlaggedServers are the server indices flagged by audits.
	FlaggedServers []int
	// CorruptResultsAccepted counts wrong sub-task results that reached
	// the user without their sub-job being flagged this epoch (exposure).
	CorruptResultsAccepted int
	// JobsFailed counts sub-jobs the CSP could not complete even after
	// retries (lost to the network-failure adversary).
	JobsFailed int
	// NetworkFaultRounds counts audit challenge rounds lost to transport
	// faults (recorded, never converted into cheating evidence).
	NetworkFaultRounds int
	// DegradedAudits counts audits whose effective sample was smaller
	// than planned because of network faults.
	DegradedAudits int
	// CrashedServers are the servers killed and recovered this epoch.
	CrashedServers []int
	// KilledServers are the servers down for this whole epoch.
	KilledServers []int
	// JobFailovers counts sub-jobs the CSP moved off their slot server.
	JobFailovers int
	// FleetAudits / FleetFailovers count fleet storage audits and the
	// rounds they re-issued to another replica.
	FleetAudits    int
	FleetFailovers int
	// LocalizedVerdicts / ProviderWideVerdicts / InconclusiveVerdicts
	// count quorum cross-examination outcomes.
	LocalizedVerdicts    int
	ProviderWideVerdicts int
	InconclusiveVerdicts int
	// RepairsConfirmed counts repairs whose targeted re-audit passed.
	RepairsConfirmed int
	// BurstFired is the open-loop background request count this epoch.
	BurstFired int
	// ShedRounds counts audit challenge rounds refused by admission
	// control (typed sheds — recorded, never accusatory).
	ShedRounds int
	// BudgetDenied counts retries refused by the shared retry budget.
	BudgetDenied int
	// HedgedRounds counts fleet audit rounds won by a hedged duplicate.
	HedgedRounds int
	// OverloadDegradedAudits counts audits whose planned sample was
	// shrunk by the overload controller before dispatch.
	OverloadDegradedAudits int
}

// Result is the whole simulation outcome.
type Result struct {
	Config Config
	Epochs []EpochStats
	// FirstDetectionEpoch is the first epoch with a detection (0 = never).
	FirstDetectionEpoch int
	// TotalExposure sums CorruptResultsAccepted over all epochs.
	TotalExposure int
	// FalseFlags counts audits that flagged a server the adversary did
	// not control that epoch (must be zero: the scheme has no false
	// positives against honest servers — including under network faults).
	FalseFlags int
	// AuditsRun totals audits across epochs.
	AuditsRun int
	// DegradedAudits totals audits with a shrunken effective sample.
	DegradedAudits int
	// NetworkFaultRounds totals challenge rounds lost to the transport.
	NetworkFaultRounds int
	// JobsFailed totals sub-jobs lost to the network.
	JobsFailed int
	// Crashes counts injected process crashes; Recoveries counts the
	// successful WAL restarts that followed (they must match, and every
	// recovered server must keep passing audits — FalseFlags stays 0).
	Crashes    int
	Recoveries int
	// Kills counts whole-epoch outages injected by KillEvery.
	Kills int
	// JobFailovers totals sub-jobs moved off their slot server.
	JobFailovers int
	// FleetAudits totals fleet storage audits; DegradedFleetAudits those
	// that could not complete their full sample even with failover.
	FleetAudits         int
	DegradedFleetAudits int
	// FleetFailovers totals re-issued fleet audit rounds.
	FleetFailovers int
	// Quorum verdict totals.
	LocalizedVerdicts    int
	ProviderWideVerdicts int
	InconclusiveVerdicts int
	// RepairsAttempted / RepairsConfirmed total audit-driven repairs and
	// those whose targeted re-audit passed.
	RepairsAttempted int
	RepairsConfirmed int
	// BurstsFired totals open-loop background requests across epochs.
	BurstsFired int
	// ShedRounds / BudgetDenied / HedgedRounds / OverloadDegradedAudits
	// total the per-epoch overload counters.
	ShedRounds             int
	BudgetDenied           int
	HedgedRounds           int
	OverloadDegradedAudits int
	// RequestsShed is the server-side view: requests (audit or burst)
	// refused by the admission gates.
	RequestsShed uint64
	// MaxQueueDepth is the deepest any server's admission queue ever got —
	// bounded by QueueLimit under protection, unbounded growth without.
	MaxQueueDepth int
	// Metrics is the end-of-run summary derived from the metrics registry
	// (not from the hand-rolled counters above); with a fresh hub the two
	// views agree exactly.
	Metrics MetricsSummary
}

// MetricsSummary is the registry-derived view of a run: every field is
// read back from the instruments the audit pipeline recorded into,
// providing an independent cross-check of the hand-rolled accumulation.
type MetricsSummary struct {
	// AuditsRun / FleetAudits count returned job / fleet audit reports.
	AuditsRun   int
	FleetAudits int
	// NetworkFaultRounds counts job-audit rounds lost to the transport
	// (verdicts network-fault and timeout).
	NetworkFaultRounds int
	// FleetFailovers counts re-issued fleet audit rounds.
	FleetFailovers int
	// RepairsAttempted / RepairsConfirmed count audit-driven repairs.
	RepairsAttempted int
	RepairsConfirmed int
	// FalseFlags counts audits that flagged a genuinely honest server.
	FalseFlags int
}

// SummarizeRegistry derives a MetricsSummary from a registry snapshot.
func SummarizeRegistry(s obs.Snapshot) MetricsSummary {
	return MetricsSummary{
		AuditsRun:   int(s.Total("audits_total", map[string]string{"type": "job"})),
		FleetAudits: int(s.Total("audits_total", map[string]string{"type": "fleet"})),
		NetworkFaultRounds: int(s.Total("audit_rounds_total", map[string]string{"type": "job", "verdict": "network-fault"}) +
			s.Total("audit_rounds_total", map[string]string{"type": "job", "verdict": "timeout"})),
		FleetFailovers:   int(s.Total("fleet_failovers_total", nil)),
		RepairsAttempted: int(s.Total("fleet_repairs_total", map[string]string{"stage": "attempted"})),
		RepairsConfirmed: int(s.Total("fleet_repairs_total", map[string]string{"stage": "confirmed"})),
		FalseFlags:       int(s.Total("sim_false_flags_total", nil)),
	}
}

// FleetAvailability is the fraction of fleet storage audits that
// completed their full planned sample — failover hides outages, so this
// stays 1.0 as long as some replica can answer every round (1.0 when no
// fleet audits ran).
func (r *Result) FleetAvailability() float64 {
	if r.FleetAudits == 0 {
		return 1
	}
	return 1 - float64(r.DegradedFleetAudits)/float64(r.FleetAudits)
}

// AuditSuccessRate is the fraction of audits that completed their full
// planned sample despite the fault injector (1.0 when no audits ran).
func (r *Result) AuditSuccessRate() float64 {
	if r.AuditsRun == 0 {
		return 1
	}
	return 1 - float64(r.DegradedAudits)/float64(r.AuditsRun)
}

// switchablePolicy lets the simulation flip a server between honest and
// cheating across epochs without rebuilding server state.
type switchablePolicy struct {
	active core.CheatPolicy
	honest core.Honest
	on     bool
}

func (s *switchablePolicy) Name() string {
	if s.on {
		return "epoch:" + s.active.Name()
	}
	return "epoch:honest"
}

func (s *switchablePolicy) OnStore(pos uint64, data []byte, sig wire.BlockSig) ([]byte, bool) {
	if s.on {
		return s.active.OnStore(pos, data, sig)
	}
	return s.honest.OnStore(pos, data, sig)
}

func (s *switchablePolicy) RedirectPosition(taskIdx int, pos uint64) uint64 {
	if s.on {
		return s.active.RedirectPosition(taskIdx, pos)
	}
	return pos
}

func (s *switchablePolicy) OnResult(taskIdx int, task wire.TaskSpec, honest func() ([]byte, error)) ([]byte, error) {
	if s.on {
		return s.active.OnResult(taskIdx, task, honest)
	}
	return honest()
}

// latentHandler charges a real service time to every request, so
// admission gates see genuine occupancy while a request executes.
type latentHandler struct {
	inner netsim.Handler
	d     time.Duration
}

func (h *latentHandler) Handle(m wire.Message) wire.Message {
	time.Sleep(h.d)
	return h.inner.Handle(m)
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := mrand.New(mrand.NewSource(cfg.Seed))
	hub := cfg.Hub
	if hub == nil {
		hub = obs.NewHub()
	}
	falseFlags := hub.Counter("sim_false_flags_total").With()

	sio, err := ibc.Setup(pairing.InsecureTest256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	sp := sio.Params()
	userKey, err := sio.Extract("user:epoch")
	if err != nil {
		return nil, err
	}
	daKey, err := sio.Extract("da:epoch")
	if err != nil {
		return nil, err
	}
	user := core.NewUser(sp, userKey, rand.Reader)
	agency := core.NewAgency(sp, daKey, rand.Reader).WithWorkers(cfg.Workers).WithObs(hub)
	// Crypto op counts flow into the registry at scrape time.
	ops.Export(hub.Registry(), "g1", sp.G1().Counters())

	// The retry machinery runs on a virtual clock: backoff is decided but
	// never slept, so lossy-link simulations stay fast and deterministic.
	noSleep := func(context.Context, time.Duration) error { return nil }
	newRetrier := func(seed int64) *netsim.Retrier {
		r := netsim.NewRetrier(seed)
		r.MaxAttempts = cfg.retryAttempts()
		r.Sleep = noSleep
		r.OnRetry = netsim.RetryHook(hub)
		return r
	}

	// The DA's overload protections: one degradation controller and one
	// retry budget shared across the whole run, so audit N's pressure
	// informs audit N+1 and correlated failures cannot amplify.
	var overloadCtl *core.OverloadController
	if cfg.DegradeSampling {
		overloadCtl = core.NewOverloadController(core.OverloadConfig{}).WithObs(hub)
	}
	var budget *netsim.RetryBudget
	if cfg.RetryBudgetTokens > 0 {
		budget = netsim.NewRetryBudget(float64(cfg.RetryBudgetTokens), 0.1).WithObs(hub)
	}

	policies := make([]*switchablePolicy, cfg.Servers)
	clients := make([]netsim.Client, cfg.Servers)
	cspClients := make([]netsim.Client, cfg.Servers)
	handlers := make([]*netsim.SwappableHandler, cfg.Servers)
	downs := make([]*netsim.DownableHandler, cfg.Servers)
	crashers := make([]*store.Crasher, cfg.Servers)
	var gates []*netsim.Admission
	if cfg.MaxInflight > 0 {
		gates = make([]*netsim.Admission, cfg.Servers)
	}
	// newServer builds server i's incarnation; with a WALDir this runs the
	// full recovery path (snapshot load, WAL replay, Merkle cross-checks)
	// every time it is called on a non-empty directory.
	newServer := func(i int, crash *store.Crasher) (*core.Server, error) {
		key, err := sio.Extract(fmt.Sprintf("cs:epoch-%d", i))
		if err != nil {
			return nil, err
		}
		sc := core.ServerConfig{
			Policy:  policies[i],
			Random:  rand.Reader,
			Workers: cfg.Workers,
		}
		if cfg.WALDir != "" {
			sc.Durability = &core.DurabilityConfig{
				Dir:           filepath.Join(cfg.WALDir, fmt.Sprintf("cs-%d", i)),
				SnapshotEvery: cfg.snapshotEvery(),
				NoSync:        true,
				Crash:         crash,
				Obs:           hub,
			}
		}
		return core.NewServer(sp, key, sc)
	}
	for i := 0; i < cfg.Servers; i++ {
		policies[i] = &switchablePolicy{
			active: &core.ComputationCheater{
				CSC: cfg.CheaterCSC,
				Rng: mrand.New(mrand.NewSource(cfg.Seed + int64(i) + 1)),
			},
		}
		crashers[i] = &store.Crasher{}
		srv, err := newServer(i, crashers[i])
		if err != nil {
			return nil, err
		}
		handlers[i] = netsim.NewSwappableHandler(srv)
		// The downable wrapper sits between the stable identity and the
		// link: the kill schedule flips it so the whole epoch sees the
		// server as unreachable, with its state (and WAL) intact.
		downs[i] = netsim.NewDownableHandler(handlers[i])
		var h netsim.Handler = downs[i]
		if cfg.ServiceTime > 0 {
			h = &latentHandler{inner: h, d: cfg.ServiceTime}
		}
		lb := netsim.NewLoopback(h, netsim.LinkConfig{}).WithObs(hub)
		if gates != nil {
			// One gate per server, attached at the loopback so every path
			// reaching the server — CSP jobs, audits, burst traffic — is
			// bounded by the same inflight and queue limits. The service
			// latency sleeps inside the gate, so occupancy is real.
			gates[i] = netsim.NewAdmission(netsim.AdmissionConfig{
				MaxInflight: cfg.MaxInflight,
				MaxQueue:    cfg.QueueLimit,
				RetryAfter:  2 * time.Millisecond,
			}).WithObs(hub, fmt.Sprintf("cs-%d", i))
			lb = lb.WithAdmission(gates[i])
		}
		if cfg.faultsEnabled() {
			delayRate := 0.0
			if cfg.FaultDelay > 0 {
				delayRate = 1
			}
			lb = lb.WithFaults(netsim.FaultConfig{
				Seed:        cfg.Seed + 1000 + int64(i),
				DropRate:    cfg.FaultDrop,
				CorruptRate: cfg.FaultCorrupt,
				DelayRate:   delayRate,
				Delay:       cfg.FaultDelay,
			})
		}
		clients[i] = lb
		// The CSP's store/compute path survives the lossy link through a
		// transparent retry decorator; the DA's audit path instead uses
		// its own fault-aware round machinery on the raw link.
		cspClients[i] = netsim.NewRetryClient(lb, newRetrier(cfg.Seed+2000+int64(i)))
	}

	// The fleet shares one health tracker between every path that talks
	// to the servers: audits and CSP traffic feed the same breakers, so a
	// server that stops answering jobs is already suspect when the next
	// audit round would have gone to it.
	var fleet *core.Fleet
	if cfg.fleetEnabled() {
		ids := make([]string, cfg.Servers)
		for i := range ids {
			ids[i] = fmt.Sprintf("cs:epoch-%d", i)
		}
		fleet, err = core.NewFleet(clients, ids, core.BreakerConfig{})
		if err != nil {
			return nil, err
		}
		core.ObserveFleet(hub, fleet)
		for i := range cspClients {
			cspClients[i] = fleet.Instrument(i, cspClients[i])
		}
	}
	csp, err := core.NewCSP(cspClients)
	if err != nil {
		return nil, err
	}
	if fleet != nil {
		csp = csp.WithHealth(fleet.Health())
	}

	// Outsource once; data persists across epochs.
	gen := workload.NewGenerator(cfg.Seed)
	ds := gen.GenDataset(user.ID(), cfg.BlocksPerUser, 8)
	verifiers := make([]string, 0, cfg.Servers+1)
	for i := 0; i < cfg.Servers; i++ {
		verifiers = append(verifiers, fmt.Sprintf("cs:epoch-%d", i))
	}
	verifiers = append(verifiers, agency.ID())
	storeReq, err := user.PrepareStore(ds, verifiers...)
	if err != nil {
		return nil, err
	}
	if err := csp.ReplicateStore(user, storeReq); err != nil {
		return nil, err
	}
	warrant, err := core.WildcardWarrant(user, agency.ID(), time.Now().Add(24*time.Hour))
	if err != nil {
		return nil, err
	}
	reg := funcs.NewRegistry()

	result := &Result{Config: cfg}
	// badPositions tracks which injected-rot positions are still unhealed
	// on the bad replica.
	badPositions := make(map[uint64]bool)
	for ep := 1; ep <= cfg.Epochs; ep++ {
		stats := EpochStats{Epoch: ep}

		// The crash schedule: kill one server (round-robin) at its armed
		// crash point, then restart it from its WAL directory. The dying
		// mutation is a routine same-content rewrite of block 0, so the
		// dataset the audits check is unchanged whether or not the record
		// survived the crash.
		if cfg.CrashEvery > 0 && ep%cfg.CrashEvery == 0 {
			v := (ep/cfg.CrashEvery - 1) % cfg.Servers
			point, _ := store.CrashPointByName(cfg.crashPoint())
			crashers[v].Arm(point)
			err := user.UpdateBlock(cspClients[v], 0, ds.Blocks[0], verifiers...)
			if err == nil || !crashers[v].Fired() {
				return nil, fmt.Errorf("epoch %d: crash at %v on server %d did not fire (err=%v)",
					ep, point, v, err)
			}
			result.Crashes++
			stats.CrashedServers = append(stats.CrashedServers, v)
			// Restart: a fresh incarnation recovered from disk, behind the
			// same network identity. Crashers are one-shot, so the new
			// incarnation gets a new one.
			crashers[v] = &store.Crasher{}
			srv, err := newServer(v, crashers[v])
			if err != nil {
				return nil, fmt.Errorf("epoch %d: restarting server %d: %w", ep, v, err)
			}
			if !srv.Recovery().Recovered {
				return nil, fmt.Errorf("epoch %d: server %d restart recovered nothing", ep, v)
			}
			handlers[v].Swap(srv)
			result.Recoveries++
			// The client re-issues the unacked mutation (fresh sequence
			// number); durable-or-lost, the state converges either way.
			if err := user.UpdateBlock(cspClients[v], 0, ds.Blocks[0], verifiers...); err != nil {
				return nil, fmt.Errorf("epoch %d: redelivery to recovered server %d: %w", ep, v, err)
			}
		}

		// The outage schedule: one server (round-robin) is unreachable for
		// this whole epoch. If the crash schedule already picked the same
		// server this epoch, shift by one — the crash machinery needs to
		// reach its victim to kill it.
		killVictim := -1
		if cfg.KillEvery > 0 && ep%cfg.KillEvery == 0 {
			killVictim = (ep/cfg.KillEvery - 1) % cfg.Servers
			if len(stats.CrashedServers) > 0 && killVictim == stats.CrashedServers[0] {
				killVictim = (killVictim + 1) % cfg.Servers
			}
			downs[killVictim].SetDown(true)
			stats.KilledServers = append(stats.KilledServers, killVictim)
			result.Kills++
		}

		// The silent-corruption injection: BadBlocks blocks rot on one
		// replica, beneath the durability layer — no WAL record, no
		// signature change, exactly what a quorum cross-examination must
		// classify as localized.
		if cfg.BadReplicaEpoch > 0 && ep == cfg.BadReplicaEpoch {
			srv := handlers[cfg.BadReplica].Current().(*core.Server)
			for b := 0; b < cfg.BadBlocks; b++ {
				// Bit-flip the real block rather than truncating it: the
				// rotten bytes stay structurally decodable, so compute jobs
				// run (and return wrong results) instead of erroring out —
				// silent corruption, not a crash.
				rot := append([]byte(nil), ds.Blocks[b]...)
				for i := range rot {
					rot[i] ^= 0xA5
				}
				if _, ok := srv.TamperBlock(user.ID(), uint64(b), rot); !ok {
					return nil, fmt.Errorf("epoch %d: tampering block %d on server %d found nothing", ep, b, cfg.BadReplica)
				}
				badPositions[uint64(b)] = true
			}
		}

		// The mobile adversary re-picks its b servers.
		picks := core.SampleIndices(rng, cfg.Servers, cfg.Corrupted)
		corrupted := make(map[int]bool, len(picks))
		for _, p := range picks {
			stats.CorruptedServers = append(stats.CorruptedServers, int(p))
			corrupted[int(p)] = true
		}
		for i, pol := range policies {
			pol.on = corrupted[i]
		}

		// The overload schedule: OfferedLoad × capacity background clients
		// hammer the admission gates for the whole epoch, each re-offering
		// the moment its previous request resolves — offered concurrency
		// stays constant no matter how slowly the servers answer, which is
		// what makes the overload open-loop. Shed clients honor the
		// server's retry-after hint instead of spinning. The audits run
		// INTO this pressure; the burst is only reaped at epoch end.
		var burstWG sync.WaitGroup
		var burstStop chan struct{}
		var burstSent int64
		burstActive := cfg.overloadEnabled() && ep%cfg.OverloadEvery == 0
		if burstActive {
			burstStop = make(chan struct{})
			for k := 0; k < cfg.burstRequests(); k++ {
				i := k % cfg.Servers
				burstWG.Add(1)
				go func(i int) {
					defer burstWG.Done()
					for {
						select {
						case <-burstStop:
							return
						default:
						}
						atomic.AddInt64(&burstSent, 1)
						_, err := clients[i].RoundTrip(&wire.StorageAuditRequest{UserID: "overload-burst"})
						if netsim.IsOverloaded(err) {
							time.Sleep(2 * time.Millisecond)
						}
					}
				}(i)
			}
		}

		for j := 0; j < cfg.JobsPerEpoch; j++ {
			jobID := fmt.Sprintf("epoch-%d-job-%d", ep, j)
			job := workload.UniformJob(user.ID(), funcs.Spec{Name: "digest"}, cfg.BlocksPerUser)
			subs, err := csp.RunJob(user, jobID, job)
			if err != nil {
				if cfg.faultsEnabled() || killVictim >= 0 || burstActive {
					// The network ate the job even after retries; record
					// the loss and keep the simulation running.
					stats.JobsFailed++
					continue
				}
				return nil, fmt.Errorf("epoch %d job %d: %w", ep, j, err)
			}
			stats.JobsRun += len(subs)
			for _, sub := range subs {
				if sub.ServerIdx != sub.Slot {
					stats.JobFailovers++
				}
			}

			flagged := make(map[int]bool)
			if cfg.SampleSize > 0 {
				auditCfg := core.AuditConfig{
					SampleSize:      cfg.SampleSize,
					BatchSignatures: true,
					Deadline:        cfg.AuditDeadline,
					Budget:          budget,
					Overload:        overloadCtl,
				}
				if cfg.faultsEnabled() || cfg.overloadEnabled() {
					// The DA splits the sample across rounds and retries
					// each a few times; rounds still lost degrade the
					// effective sample instead of aborting the audit. The
					// smaller budget (vs. the CSP's) makes degradation
					// observable in fault sweeps.
					auditCfg.Rounds = 3
					auditCfg.Analysis = &sampling.Params{CSC: cfg.CheaterCSC, SSC: 0, R: math.Inf(1)}
				}
				for i, d := range core.Delegations(user, subs, warrant) {
					auditCfg.Rng = mrand.New(mrand.NewSource(rng.Int63()))
					if cfg.faultsEnabled() || cfg.overloadEnabled() {
						r := newRetrier(rng.Int63())
						r.MaxAttempts = 3
						auditCfg.Retry = r
					}
					// Audits run on the raw faulty link so the agency's
					// own fault-aware machinery is what gets exercised —
					// through the fleet's instrumentation when it exists,
					// so audit outcomes feed the breakers too.
					auditClient := clients[subs[i].ServerIdx]
					if fleet != nil {
						auditClient = fleet.Client(subs[i].ServerIdx)
					}
					report, err := agency.AuditJob(auditClient, d, auditCfg)
					if err != nil {
						return nil, fmt.Errorf("epoch %d audit: %w", ep, err)
					}
					stats.AuditsRun++
					stats.NetworkFaultRounds += report.NetworkFaultRounds()
					stats.ShedRounds += report.ShedRounds()
					stats.BudgetDenied += report.BudgetDenied
					if report.DegradedByOverload {
						stats.OverloadDegradedAudits++
					}
					if report.Degraded() {
						stats.DegradedAudits++
					}
					if !report.Valid() {
						stats.Detections++
						sIdx := subs[i].ServerIdx
						flagged[sIdx] = true
						stats.FlaggedServers = append(stats.FlaggedServers, sIdx)
						// A flag is false only when the server was neither
						// adversary-controlled nor carrying injected rot:
						// the bad replica genuinely serves wrong bytes.
						rotten := len(badPositions) > 0 && sIdx == cfg.BadReplica
						if !corrupted[sIdx] && !rotten {
							result.FalseFlags++
							falseFlags.Inc()
						}
					}
				}
			}

			// Exposure: wrong results from unflagged sub-jobs reach the user.
			for _, sub := range subs {
				if flagged[sub.ServerIdx] {
					continue // user drops flagged results (Return Step)
				}
				for k, ti := range sub.TaskIndices {
					want, err := reg.Eval(funcs.Spec{Name: "digest"}, [][]byte{ds.Blocks[ti]})
					if err != nil {
						return nil, err
					}
					if string(want) != string(sub.Resp.Results[k]) {
						stats.CorruptResultsAccepted++
					}
				}
			}
		}
		// Fleet storage audits: every server takes one turn as primary, so
		// a killed primary forces observable failover and the bad replica
		// is always challenged directly at least once per epoch.
		if fleet != nil && cfg.FleetSampleSize > 0 {
			for pi := 0; pi < cfg.Servers; pi++ {
				fcfg := core.FleetAuditConfig{
					Storage: core.StorageAuditConfig{
						DatasetSize:     cfg.BlocksPerUser,
						SampleSize:      cfg.FleetSampleSize,
						Rounds:          2,
						BatchSignatures: true,
						Rng:             mrand.New(mrand.NewSource(rng.Int63())),
						Deadline:        cfg.AuditDeadline,
						Budget:          budget,
						Overload:        overloadCtl,
					},
					Primary: pi,
					QuorumK: cfg.QuorumK,
					Repair:  cfg.Repair,
					Hedge:   cfg.HedgeFleetRounds,
				}
				if cfg.faultsEnabled() || cfg.overloadEnabled() {
					r := newRetrier(rng.Int63())
					r.MaxAttempts = 3
					fcfg.Storage.Retry = r
				}
				fr, err := agency.AuditStorageFleet(fleet, user.ID(), warrant, fcfg)
				if err != nil {
					return nil, fmt.Errorf("epoch %d fleet audit (primary %d): %w", ep, pi, err)
				}
				stats.FleetAudits++
				stats.FleetFailovers += len(fr.Failovers)
				stats.ShedRounds += fr.Report.ShedRounds()
				stats.HedgedRounds += fr.Report.HedgedRounds()
				stats.BudgetDenied += fr.Report.BudgetDenied
				if fr.Report.DegradedByOverload {
					stats.OverloadDegradedAudits++
				}
				if fr.Report.Degraded() {
					result.DegradedFleetAudits++
				}
				for _, q := range fr.Quorums {
					switch q.Class {
					case core.QuorumLocalized:
						stats.LocalizedVerdicts++
					case core.QuorumProviderWide:
						stats.ProviderWideVerdicts++
					default:
						stats.InconclusiveVerdicts++
					}
					// A storage accusation against a replica that is
					// neither adversary-controlled nor carrying injected
					// rot is a false flag.
					rotten := len(badPositions) > 0 && q.Accused == cfg.BadReplica
					if !corrupted[q.Accused] && !rotten {
						result.FalseFlags++
						falseFlags.Inc()
					}
				}
				for _, rp := range fr.Repairs {
					result.RepairsAttempted++
					if !rp.Confirmed {
						continue
					}
					stats.RepairsConfirmed++
					if rp.Plan.Target == cfg.BadReplica {
						for _, pos := range rp.Plan.Positions {
							delete(badPositions, pos)
						}
					}
				}
			}
		}

		// Reap the open-loop burst so goroutines never outlive their epoch
		// (bounded queues shed the excess instantly; the unbounded
		// baseline drains here, charging its backlog to this epoch).
		if burstActive {
			close(burstStop)
			burstWG.Wait()
			stats.BurstFired = int(atomic.LoadInt64(&burstSent))
			result.BurstsFired += stats.BurstFired
		}

		// The killed server returns at the end of the epoch, state intact.
		if killVictim >= 0 {
			downs[killVictim].SetDown(false)
		}

		if stats.Detections > 0 && result.FirstDetectionEpoch == 0 {
			result.FirstDetectionEpoch = ep
		}
		result.TotalExposure += stats.CorruptResultsAccepted
		result.AuditsRun += stats.AuditsRun
		result.DegradedAudits += stats.DegradedAudits
		result.NetworkFaultRounds += stats.NetworkFaultRounds
		result.JobsFailed += stats.JobsFailed
		result.JobFailovers += stats.JobFailovers
		result.FleetAudits += stats.FleetAudits
		result.FleetFailovers += stats.FleetFailovers
		result.LocalizedVerdicts += stats.LocalizedVerdicts
		result.ProviderWideVerdicts += stats.ProviderWideVerdicts
		result.InconclusiveVerdicts += stats.InconclusiveVerdicts
		result.RepairsConfirmed += stats.RepairsConfirmed
		result.ShedRounds += stats.ShedRounds
		result.BudgetDenied += stats.BudgetDenied
		result.HedgedRounds += stats.HedgedRounds
		result.OverloadDegradedAudits += stats.OverloadDegradedAudits
		result.Epochs = append(result.Epochs, stats)
	}
	for _, g := range gates {
		s := g.Snapshot()
		result.RequestsShed += s.Shed
		if s.MaxQueueDepth > result.MaxQueueDepth {
			result.MaxQueueDepth = s.MaxQueueDepth
		}
	}
	result.Metrics = SummarizeRegistry(hub.Registry().Snapshot())
	return result, nil
}
