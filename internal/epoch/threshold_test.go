package epoch

import (
	"strings"
	"testing"
)

func thresholdBaseConfig() ThresholdConfig {
	return ThresholdConfig{
		T: 3, N: 5,
		Epochs:     4,
		Blocks:     12,
		SampleSize: 6,
		Seed:       42,
	}
}

func TestRunThresholdHealthyAgreesWithSingleDA(t *testing.T) {
	res, err := RunThreshold(thresholdBaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Audits != 4 || res.FalseFlags != 0 || res.Detections != 0 {
		t.Fatalf("healthy run: %+v", res)
	}
	if res.VerdictMismatches != 0 {
		t.Fatalf("quorum verdicts diverged from the single-DA reference: %d", res.VerdictMismatches)
	}
	if res.QuorumRecoveries != 0 || res.ByzantinePartials != 0 {
		t.Fatalf("healthy run recorded auditor faults: %+v", res)
	}
	for _, ep := range res.Epochs {
		if !ep.AgreesWithSingleDA || !ep.Valid || ep.CombinedDigest == "" {
			t.Fatalf("epoch %d: %+v", ep.Epoch, ep)
		}
	}
	if res.Metrics.FalseFlags != 0 || res.Metrics.Audits == 0 {
		t.Fatalf("metrics cross-check: %+v", res.Metrics)
	}
}

func TestRunThresholdSurvivesRotatingFaults(t *testing.T) {
	cfg := thresholdBaseConfig()
	cfg.T, cfg.N = 2, 5
	cfg.Epochs = 5
	cfg.CrashedHolders = 2
	cfg.ByzantineHolders = 1
	res, err := RunThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Audits != 5 {
		t.Fatalf("audits = %d, want 5", res.Audits)
	}
	if res.FalseFlags != 0 {
		t.Fatalf("auditor faults became storage accusations: %d false flags", res.FalseFlags)
	}
	if res.VerdictMismatches != 0 {
		t.Fatalf("faulty-quorum verdicts diverged from reference: %d", res.VerdictMismatches)
	}
	if res.QuorumRecoveries == 0 || res.ByzantinePartials == 0 {
		t.Fatalf("rotating faults recorded no recoveries: %+v", res)
	}
	// The crashed subset slides every epoch, so different quorums decide.
	if res.DistinctQuorums < 2 {
		t.Fatalf("fault rotation never changed the quorum: %d distinct", res.DistinctQuorums)
	}
	if res.Metrics.Recoveries != res.QuorumRecoveries || res.Metrics.Byzantine != res.ByzantinePartials {
		t.Fatalf("registry disagrees with report trail: %+v vs %+v", res.Metrics, res)
	}
}

func TestRunThresholdDetectsTamperThroughQuorum(t *testing.T) {
	cfg := thresholdBaseConfig()
	cfg.T, cfg.N = 2, 5
	cfg.Epochs = 4
	cfg.CrashedHolders = 1
	cfg.ByzantineHolders = 1
	cfg.TamperEpoch = 3
	res, err := RunThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDetectionEpoch != 3 {
		t.Fatalf("first detection at epoch %d, want 3", res.FirstDetectionEpoch)
	}
	if res.Detections != 2 {
		t.Fatalf("detections = %d, want 2 (epochs 3 and 4)", res.Detections)
	}
	if res.FalseFlags != 0 || res.Metrics.FalseFlags != 0 {
		t.Fatalf("false flags: %d (metrics %d)", res.FalseFlags, res.Metrics.FalseFlags)
	}
	if res.VerdictMismatches != 0 {
		t.Fatalf("detection verdicts diverged from reference: %d", res.VerdictMismatches)
	}
}

func TestRunThresholdValidatesConfig(t *testing.T) {
	bad := []func(*ThresholdConfig){
		func(c *ThresholdConfig) { c.T = 0 },
		func(c *ThresholdConfig) { c.T = 6 },
		func(c *ThresholdConfig) { c.Epochs = 0 },
		func(c *ThresholdConfig) { c.CrashedHolders = 3 },      // 3 > n−t = 2
		func(c *ThresholdConfig) { c.ByzantineHolders = -1 },
		func(c *ThresholdConfig) { c.TamperEpoch = 99 },
	}
	for i, mutate := range bad {
		cfg := thresholdBaseConfig()
		mutate(&cfg)
		if _, err := RunThreshold(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		} else if !strings.Contains(err.Error(), "epoch:") {
			t.Errorf("case %d: unexpected error %v", i, err)
		}
	}
}
