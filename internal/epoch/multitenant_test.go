package epoch

import (
	"testing"
)

func TestRunMultiTenantHonest(t *testing.T) {
	res, err := RunMultiTenant(MultiTenantConfig{
		Tenants:          50_000,
		SessionsPerEpoch: 24,
		Epochs:           2,
		ZipfS:            1.3,
		BlocksPerTenant:  6,
		SampleSize:       3,
		CrossTenantBatch: true,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RegisteredTenants != 50_000 {
		t.Fatalf("RegisteredTenants = %d", res.RegisteredTenants)
	}
	// Lazy materialization: the working set is bounded by traffic, never
	// by the population.
	if res.MaterializedTenants > 48 || res.MaterializedTenants < 1 {
		t.Fatalf("MaterializedTenants = %d for %d sessions", res.MaterializedTenants, res.SessionsRun)
	}
	if res.SessionsRun != 48 {
		t.Fatalf("SessionsRun = %d, want 48", res.SessionsRun)
	}
	if res.FalseFlags != 0 || res.Detections != 0 {
		t.Fatalf("honest run flagged: detections=%d falseFlags=%d", res.Detections, res.FalseFlags)
	}
	// Cross-tenant batching with no flush limit: exactly one aggregate
	// verification per epoch drain.
	if res.Flushes != 2 {
		t.Fatalf("Flushes = %d, want 2 (one per epoch)", res.Flushes)
	}
	// Registry-derived metrics agree with the hand-rolled accumulation.
	if res.Metrics.Sessions != res.SessionsRun || res.Metrics.Flushes != res.Flushes ||
		res.Metrics.SigItems != res.BatchedSigItems || res.Metrics.Registered != res.RegisteredTenants {
		t.Fatalf("metrics cross-check mismatch: %+v vs result %+v", res.Metrics, res)
	}
}

func TestRunMultiTenantTamperDetectedNoFalseFlags(t *testing.T) {
	cfg := MultiTenantConfig{
		Tenants:          10_000,
		SessionsPerEpoch: 20,
		Epochs:           3,
		ZipfS:            1.4,
		BlocksPerTenant:  6,
		SampleSize:       4,
		CrossTenantBatch: true,
		TamperEpoch:      2,
		TamperRank:       0, // the traffic head: guaranteed sessions
		Seed:             7,
	}
	res, err := RunMultiTenant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections == 0 {
		t.Fatal("tampered head tenant never detected")
	}
	if res.FirstDetectionEpoch != 2 {
		t.Fatalf("FirstDetectionEpoch = %d, want 2", res.FirstDetectionEpoch)
	}
	if res.FalseFlags != 0 {
		t.Fatalf("false flags: %d", res.FalseFlags)
	}
	if res.BlameFallbacks == 0 {
		t.Fatal("cross-tenant aggregate never fell back to attribute blame")
	}
	if res.Epochs[0].Detections != 0 {
		t.Fatal("detection before the tamper epoch")
	}
}

func TestRunMultiTenantDeterministicAcrossWorkers(t *testing.T) {
	base := MultiTenantConfig{
		Tenants:          20_000,
		SessionsPerEpoch: 16,
		Epochs:           2,
		ZipfS:            1.3,
		BlocksPerTenant:  6,
		SampleSize:       3,
		CrossTenantBatch: true,
		FlushLimit:       10,
		TamperEpoch:      2,
		TamperRank:       0,
		Seed:             21,
	}
	var first *MultiTenantResult
	for _, workers := range []int{1, 8} {
		cfg := base
		cfg.Workers = workers
		res, err := RunMultiTenant(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == nil {
			first = res
			continue
		}
		if res.Fingerprint != first.Fingerprint {
			t.Fatalf("fingerprint differs between worker counts:\n--- w=1\n%s\n--- w=%d\n%s",
				first.Fingerprint, workers, res.Fingerprint)
		}
		if res.Detections != first.Detections || res.FalseFlags != first.FalseFlags {
			t.Fatalf("verdict totals differ across workers: %+v vs %+v", first, res)
		}
	}
}

func TestRunMultiTenantValidation(t *testing.T) {
	bad := []MultiTenantConfig{
		{Tenants: 1, SessionsPerEpoch: 1, Epochs: 1, ZipfS: 1.2},
		{Tenants: 10, SessionsPerEpoch: 0, Epochs: 1, ZipfS: 1.2},
		{Tenants: 10, SessionsPerEpoch: 1, Epochs: 1, ZipfS: 1.0},
		{Tenants: 10, SessionsPerEpoch: 1, Epochs: 1, ZipfS: 1.2, TamperEpoch: 2},
		{Tenants: 10, SessionsPerEpoch: 1, Epochs: 1, ZipfS: 1.2, TamperEpoch: 1, TamperRank: 10},
	}
	for i, cfg := range bad {
		if _, err := RunMultiTenant(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}
