package epoch

import (
	"testing"

	"seccloud/internal/obs"
)

// TestMetricsMatchHandRolled pins the satellite contract: the registry-
// derived MetricsSummary and the hand-rolled Result counters are two
// independent accumulations of the same run, and they must never
// diverge. The scenario deliberately exercises every counted path:
// cheating servers, a lossy network, fleet failover, quorum verdicts,
// and audit-driven repair.
func TestMetricsMatchHandRolled(t *testing.T) {
	hub := obs.NewHub()
	res, err := Run(Config{
		Servers: 4, Corrupted: 1, Epochs: 3, BlocksPerUser: 6,
		JobsPerEpoch: 1, SampleSize: 2, FleetSampleSize: 6,
		KillEvery: 2, Repair: true,
		BadReplicaEpoch: 2, BadReplica: 1, BadBlocks: 2,
		FaultDrop: 0.05, CheaterCSC: 0.5,
		Seed: 9, Hub: hub,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	m := res.Metrics
	if m.AuditsRun != res.AuditsRun {
		t.Errorf("registry AuditsRun = %d, hand-rolled %d", m.AuditsRun, res.AuditsRun)
	}
	if m.FleetAudits != res.FleetAudits {
		t.Errorf("registry FleetAudits = %d, hand-rolled %d", m.FleetAudits, res.FleetAudits)
	}
	if m.NetworkFaultRounds != res.NetworkFaultRounds {
		t.Errorf("registry NetworkFaultRounds = %d, hand-rolled %d", m.NetworkFaultRounds, res.NetworkFaultRounds)
	}
	if m.FleetFailovers != res.FleetFailovers {
		t.Errorf("registry FleetFailovers = %d, hand-rolled %d", m.FleetFailovers, res.FleetFailovers)
	}
	if m.RepairsAttempted != res.RepairsAttempted {
		t.Errorf("registry RepairsAttempted = %d, hand-rolled %d", m.RepairsAttempted, res.RepairsAttempted)
	}
	if m.RepairsConfirmed != res.RepairsConfirmed {
		t.Errorf("registry RepairsConfirmed = %d, hand-rolled %d", m.RepairsConfirmed, res.RepairsConfirmed)
	}
	if m.FalseFlags != res.FalseFlags {
		t.Errorf("registry FalseFlags = %d, hand-rolled %d", m.FalseFlags, res.FalseFlags)
	}
	if m.AuditsRun == 0 || m.FleetAudits == 0 {
		t.Fatalf("scenario recorded no audits: %+v", m)
	}

	// The shared hub also carries the cross-layer instruments: transport
	// traffic, breaker state gauges (refreshed at scrape), crypto op
	// counts via the ops bridge, and at least one complete audit trace.
	s := hub.Registry().Snapshot()
	if v := s.Total("rpc_requests_total", nil); v == 0 {
		t.Error("rpc_requests_total = 0: transport not instrumented")
	}
	if _, ok := s.Value("fleet_breaker_state", map[string]string{"replica": "0"}); !ok {
		t.Error("fleet_breaker_state{replica=0} missing")
	}
	if v := s.Total("crypto_ops_total", map[string]string{"op": "miller-loop"}); v == 0 {
		t.Error("crypto_ops_total{op=miller-loop} = 0: ops bridge not wired")
	}
	roots := 0
	for _, r := range hub.Tracer().Records() {
		if r.Name == "audit.fleet" || r.Name == "audit.job" {
			roots++
		}
	}
	if roots == 0 {
		t.Error("no audit root spans recorded")
	}
}

// TestRunWithoutHub pins that a nil Config.Hub still yields a registry-
// derived Metrics summary (Run builds a private hub).
func TestRunWithoutHub(t *testing.T) {
	res, err := Run(Config{
		Servers: 2, Corrupted: 1, Epochs: 2, BlocksPerUser: 4,
		JobsPerEpoch: 1, SampleSize: 2, CheaterCSC: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Metrics.AuditsRun != res.AuditsRun || res.Metrics.AuditsRun == 0 {
		t.Fatalf("private-hub Metrics = %+v, hand-rolled AuditsRun = %d", res.Metrics, res.AuditsRun)
	}
}
