package curve

import (
	"fmt"
	"math/big"
)

// Point encoding: a single prefix byte followed by two fixed-width
// big-endian coordinates. The prefix distinguishes the identity so that the
// encoding is injective and fixed-size, which the wire layer relies on for
// framing and byte accounting.
const (
	prefixInfinity byte = 0x00
	prefixAffine   byte = 0x04 // matches the uncompressed SEC1 convention
)

// PointLen returns the byte length of an encoded point for this group.
func (g *Group) PointLen() int {
	fb := (g.p.BitLen() + 7) / 8
	return 1 + 2*fb
}

// MarshalPoint encodes pt into the fixed-width format described above.
func (g *Group) MarshalPoint(pt *Point) []byte {
	fb := (g.p.BitLen() + 7) / 8
	out := make([]byte, 1+2*fb)
	if pt.Inf {
		out[0] = prefixInfinity
		return out
	}
	out[0] = prefixAffine
	pt.X.FillBytes(out[1 : 1+fb])
	pt.Y.FillBytes(out[1+fb:])
	return out
}

// UnmarshalPoint decodes and validates a point produced by MarshalPoint.
// The point is checked to be on the curve; subgroup membership is the
// caller's choice via InSubgroup (it costs a scalar multiplication).
func (g *Group) UnmarshalPoint(data []byte) (*Point, error) {
	fb := (g.p.BitLen() + 7) / 8
	if len(data) != 1+2*fb {
		return nil, fmt.Errorf("curve: point encoding has %d bytes, want %d: %w",
			len(data), 1+2*fb, ErrInvalidPoint)
	}
	switch data[0] {
	case prefixInfinity:
		for _, b := range data[1:] {
			if b != 0 {
				return nil, fmt.Errorf("curve: nonzero padding on infinity: %w", ErrInvalidPoint)
			}
		}
		return &Point{Inf: true}, nil
	case prefixAffine:
		x := new(big.Int).SetBytes(data[1 : 1+fb])
		y := new(big.Int).SetBytes(data[1+fb:])
		pt := &Point{X: x, Y: y}
		if !g.IsOnCurve(pt) {
			return nil, fmt.Errorf("curve: decoded point off curve: %w", ErrInvalidPoint)
		}
		return pt, nil
	default:
		return nil, fmt.Errorf("curve: unknown point prefix %#x: %w", data[0], ErrInvalidPoint)
	}
}
