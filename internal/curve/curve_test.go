package curve

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
)

// Test fixture: the InsecureTest256 parameter set (duplicated here as raw
// constants to avoid an import cycle with the pairing package).
var (
	testP  = mustBig("9aa44f7a571142bc66a2eb864139537066b0f3231e6ed327f943df11c8a4cd9f")
	testQ  = mustBig("cc931f6561341ef365b1adfb")
	testH  = mustBig("c183e32746e5667de807abed1a641989105b16e0")
	testGx = mustBig("69bf6f33d3fdbb2353e673b29c1e0dd95d4a7bfcd92c3f2214db6804737ec073")
	testGy = mustBig("4375a938104e2968b4eac8ca3320da6d73c3859fcf257db21957117ad3e5cc10")
)

func mustBig(hex string) *big.Int {
	v, ok := new(big.Int).SetString(hex, 16)
	if !ok {
		panic("bad hex in test fixture")
	}
	return v
}

func testGroup(t *testing.T) *Group {
	t.Helper()
	g, err := NewGroup(testP, testQ, testH, &Point{X: testGx, Y: testGy})
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	return g
}

func TestNewGroupRejectsBadParams(t *testing.T) {
	gen := &Point{X: testGx, Y: testGy}
	cases := []struct {
		name    string
		p, q, h *big.Int
		gen     *Point
	}{
		{"wrong order product", testP, testQ, big.NewInt(4), gen},
		{"generator off curve", testP, testQ, testH, &Point{X: big.NewInt(1), Y: big.NewInt(1)}},
		{"generator at infinity", testP, testQ, testH, &Point{Inf: true}},
		{"nil generator", testP, testQ, testH, nil},
		{"generator wrong order", testP, testQ, testH, &Point{X: big.NewInt(0), Y: big.NewInt(0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewGroup(tc.p, tc.q, tc.h, tc.gen); err == nil {
				t.Fatal("NewGroup succeeded, want error")
			}
		})
	}
}

func randScalar(rng *mrand.Rand) *big.Int {
	return new(big.Int).Rand(rng, testQ)
}

func TestGroupLaws(t *testing.T) {
	g := testGroup(t)
	rng := mrand.New(mrand.NewSource(42))
	gen := g.Generator()
	for i := 0; i < 30; i++ {
		a := g.ScalarMult(gen, randScalar(rng))
		b := g.ScalarMult(gen, randScalar(rng))
		c := g.ScalarMult(gen, randScalar(rng))

		if !g.IsOnCurve(a) || !g.InSubgroup(a) {
			t.Fatal("random multiple not in subgroup")
		}
		// Commutativity and associativity.
		if !g.Equal(g.Add(a, b), g.Add(b, a)) {
			t.Fatal("addition not commutative")
		}
		if !g.Equal(g.Add(g.Add(a, b), c), g.Add(a, g.Add(b, c))) {
			t.Fatal("addition not associative")
		}
		// Identity and inverse.
		if !g.Equal(g.Add(a, g.Infinity()), a) {
			t.Fatal("identity fails")
		}
		if !g.Add(a, g.Neg(a)).Inf {
			t.Fatal("inverse fails")
		}
		// Sub is Add(Neg).
		if !g.Equal(g.Sub(a, b), g.Add(a, g.Neg(b))) {
			t.Fatal("Sub inconsistent")
		}
		// Double agrees with Add(self).
		if !g.Equal(g.Double(a), g.Add(a, a)) {
			t.Fatal("Double inconsistent with Add")
		}
	}
}

func TestScalarMultLaws(t *testing.T) {
	g := testGroup(t)
	rng := mrand.New(mrand.NewSource(43))
	gen := g.Generator()
	for i := 0; i < 20; i++ {
		k1 := randScalar(rng)
		k2 := randScalar(rng)
		// (k1+k2)·G == k1·G + k2·G
		lhs := g.BaseMult(new(big.Int).Add(k1, k2))
		rhs := g.Add(g.BaseMult(k1), g.BaseMult(k2))
		if !g.Equal(lhs, rhs) {
			t.Fatal("scalar distributivity fails")
		}
		// k1·(k2·G) == (k1·k2)·G
		lhs = g.ScalarMult(g.BaseMult(k2), k1)
		rhs = g.BaseMult(new(big.Int).Mul(k1, k2))
		if !g.Equal(lhs, rhs) {
			t.Fatal("scalar associativity fails")
		}
		// Negative scalar: (−k)·G == −(k·G)
		if !g.Equal(g.ScalarMult(gen, new(big.Int).Neg(k1)), g.Neg(g.BaseMult(k1))) {
			t.Fatal("negative scalar fails")
		}
	}
	// Edge scalars.
	if !g.BaseMult(big.NewInt(0)).Inf {
		t.Fatal("0·G should be infinity")
	}
	if !g.Equal(g.BaseMult(big.NewInt(1)), gen) {
		t.Fatal("1·G should be G")
	}
	if !g.ScalarMult(gen, g.Q()).Inf {
		t.Fatal("q·G should be infinity")
	}
	if !g.ScalarMult(g.Infinity(), big.NewInt(5)).Inf {
		t.Fatal("k·O should be infinity")
	}
	// Scalars reduce mod q: (q+1)·G == G.
	qp1 := new(big.Int).Add(g.Q(), big.NewInt(1))
	if !g.Equal(g.ScalarMult(gen, qp1), gen) {
		t.Fatal("(q+1)·G should equal G")
	}
}

func TestSumScalarMult(t *testing.T) {
	g := testGroup(t)
	rng := mrand.New(mrand.NewSource(44))
	pts := make([]*Point, 5)
	ks := make([]*big.Int, 5)
	want := g.Infinity()
	for i := range pts {
		pts[i] = g.BaseMult(randScalar(rng))
		ks[i] = randScalar(rng)
		want = g.Add(want, g.ScalarMult(pts[i], ks[i]))
	}
	got, err := g.SumScalarMult(pts, ks)
	if err != nil {
		t.Fatalf("SumScalarMult: %v", err)
	}
	if !g.Equal(got, want) {
		t.Fatal("SumScalarMult mismatch")
	}
	if _, err := g.SumScalarMult(pts, ks[:3]); err == nil {
		t.Fatal("mismatched lengths should error")
	}
}

func TestHashToPoint(t *testing.T) {
	g := testGroup(t)
	seen := make(map[string]bool)
	for _, id := range []string{"alice", "bob", "cloud-server-1", "", "designated-agency"} {
		pt := g.HashToPoint("test", []byte(id))
		if pt.Inf {
			t.Fatalf("HashToPoint(%q) returned infinity", id)
		}
		if !g.InSubgroup(pt) {
			t.Fatalf("HashToPoint(%q) not in subgroup", id)
		}
		// Deterministic.
		pt2 := g.HashToPoint("test", []byte(id))
		if !g.Equal(pt, pt2) {
			t.Fatalf("HashToPoint(%q) not deterministic", id)
		}
		key := string(g.MarshalPoint(pt))
		if seen[key] {
			t.Fatalf("HashToPoint collision on %q", id)
		}
		seen[key] = true
	}
	// Domain separation.
	a := g.HashToPoint("d1", []byte("x"))
	b := g.HashToPoint("d2", []byte("x"))
	if g.Equal(a, b) {
		t.Fatal("domain separation ineffective")
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	g := testGroup(t)
	rng := mrand.New(mrand.NewSource(45))
	for i := 0; i < 20; i++ {
		pt := g.BaseMult(randScalar(rng))
		enc := g.MarshalPoint(pt)
		if len(enc) != g.PointLen() {
			t.Fatalf("encoding length %d, want %d", len(enc), g.PointLen())
		}
		dec, err := g.UnmarshalPoint(enc)
		if err != nil {
			t.Fatalf("UnmarshalPoint: %v", err)
		}
		if !g.Equal(pt, dec) {
			t.Fatal("roundtrip mismatch")
		}
	}
	// Infinity roundtrip.
	enc := g.MarshalPoint(g.Infinity())
	dec, err := g.UnmarshalPoint(enc)
	if err != nil || !dec.Inf {
		t.Fatalf("infinity roundtrip failed: %v", err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	g := testGroup(t)
	valid := g.MarshalPoint(g.Generator())

	short := valid[:len(valid)-1]
	if _, err := g.UnmarshalPoint(short); err == nil {
		t.Fatal("short encoding accepted")
	}

	offCurve := append([]byte(nil), valid...)
	offCurve[10] ^= 0xff
	if _, err := g.UnmarshalPoint(offCurve); err == nil {
		t.Fatal("off-curve point accepted")
	}

	badPrefix := append([]byte(nil), valid...)
	badPrefix[0] = 0x99
	if _, err := g.UnmarshalPoint(badPrefix); err == nil {
		t.Fatal("unknown prefix accepted")
	}

	dirtyInf := g.MarshalPoint(g.Infinity())
	dirtyInf[5] = 1
	if _, err := g.UnmarshalPoint(dirtyInf); err == nil {
		t.Fatal("non-canonical infinity accepted")
	}
}

func TestRandPoint(t *testing.T) {
	g := testGroup(t)
	pt, k, err := g.RandPoint(rand.Reader)
	if err != nil {
		t.Fatalf("RandPoint: %v", err)
	}
	if !g.Equal(pt, g.BaseMult(k)) {
		t.Fatal("returned discrete log does not match point")
	}
	if !g.InSubgroup(pt) {
		t.Fatal("random point outside subgroup")
	}
}

func TestCopyIsDeep(t *testing.T) {
	g := testGroup(t)
	orig := g.Generator()
	cp := g.Copy(orig)
	cp.X.Add(cp.X, big.NewInt(1))
	if orig.X.Cmp(g.Generator().X) != 0 {
		t.Fatal("Copy aliased coordinates")
	}
}

func TestInSubgroupRejectsCofactorPoints(t *testing.T) {
	g := testGroup(t)
	// Find a point of full order p+1 (or at least not killed by q): take a
	// curve point before cofactor clearing. Construct by hashing then
	// checking; HashToPoint clears the cofactor so build one manually.
	fp := g.FieldCtx()
	for x := int64(2); x < 200; x++ {
		xb := big.NewInt(x)
		rhs := new(big.Int).Mul(xb, xb)
		rhs.Mul(rhs, xb)
		rhs.Add(rhs, xb)
		rhs.Mod(rhs, g.P())
		y, ok := fp.Sqrt(rhs)
		if !ok {
			continue
		}
		pt := &Point{X: xb, Y: y}
		if !g.IsOnCurve(pt) {
			t.Fatal("constructed point off curve")
		}
		if !g.InSubgroup(pt) {
			return // found a curve point outside G1, as expected
		}
	}
	t.Skip("no small-x point outside the subgroup found (improbable)")
}

func TestScalarMultMatchesBinaryLadder(t *testing.T) {
	// The windowed multiplier must agree with the classic double-and-add
	// oracle on random scalars and edge cases.
	g := testGroup(t)
	rng := mrand.New(mrand.NewSource(77))
	pt, _, err := g.RandPoint(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	edge := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(2), big.NewInt(15), big.NewInt(16),
		big.NewInt(17), big.NewInt(-5), g.Q(), new(big.Int).Sub(g.Q(), big.NewInt(1)),
	}
	for _, k := range edge {
		if !g.Equal(g.ScalarMult(pt, k), g.scalarMultBinary(pt, k)) {
			t.Fatalf("windowed and binary disagree at k=%v", k)
		}
	}
	for i := 0; i < 30; i++ {
		k := randScalar(rng)
		if !g.Equal(g.ScalarMult(pt, k), g.scalarMultBinary(pt, k)) {
			t.Fatalf("windowed and binary disagree at random k=%v", k)
		}
	}
}
