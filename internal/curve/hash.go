package curve

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"
)

// HashToPoint maps an arbitrary byte string onto a non-identity element of
// G1. This realizes the paper's H1 : {0,1}* → G1 (the map-to-point used for
// identity public keys Q_ID = H1(ID)).
//
// Construction (standard try-and-increment for supersingular curves):
// derive candidate x-coordinates from SHA-256(counter ‖ domain ‖ msg) until
// x³ + x is a quadratic residue, lift to (x, y), then clear the cofactor by
// multiplying with h so the result lands in the order-q subgroup. Cofactor
// clearing can only yield the identity with negligible probability; the loop
// continues in that case so the function is total.
func (g *Group) HashToPoint(domain string, msg []byte) *Point {
	g.counters.AddHashToPoint()
	for ctr := uint32(0); ; ctr++ {
		h := sha256.New()
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		h.Write([]byte(domain))
		h.Write(msg)
		digest := h.Sum(nil)

		// Expand the digest to cover the field width.
		need := (g.p.BitLen() + 7) / 8
		buf := make([]byte, 0, need+sha256.Size)
		block := digest
		for len(buf) < need {
			buf = append(buf, block...)
			h2 := sha256.Sum256(block)
			block = h2[:]
		}
		x := new(big.Int).SetBytes(buf[:need])
		x.Mod(x, g.p)

		rhs := new(big.Int).Mul(x, x)
		rhs.Mul(rhs, x)
		rhs.Add(rhs, x)
		rhs.Mod(rhs, g.p)
		y, ok := g.fp.Sqrt(rhs)
		if !ok {
			continue
		}
		// Deterministically pick the "even" root for reproducibility.
		if y.Bit(0) == 1 {
			y.Neg(y)
			y.Mod(y, g.p)
		}
		pt := g.ScalarMult(&Point{X: x, Y: y}, g.h)
		if pt.Inf {
			continue
		}
		return pt
	}
}
