package curve

import (
	"crypto/rand"
	"testing"
)

func benchGroup(b *testing.B) *Group {
	b.Helper()
	g, err := NewGroup(testP, testQ, testH, &Point{X: testGx, Y: testGy})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkScalarMult(b *testing.B) {
	g := benchGroup(b)
	pt, _, err := g.RandPoint(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	k, err := g.Scalars().Rand(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ScalarMult(pt, k)
	}
}

func BenchmarkAddAffine(b *testing.B) {
	g := benchGroup(b)
	p1, _, _ := g.RandPoint(rand.Reader)
	p2, _, _ := g.RandPoint(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Add(p1, p2)
	}
}

func BenchmarkHashToPoint(b *testing.B) {
	g := benchGroup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HashToPoint("bench", []byte{byte(i), byte(i >> 8), byte(i >> 16)})
	}
}

func BenchmarkInSubgroup(b *testing.B) {
	g := benchGroup(b)
	pt, _, _ := g.RandPoint(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !g.InSubgroup(pt) {
			b.Fatal("valid point rejected")
		}
	}
}

func BenchmarkMarshalUnmarshal(b *testing.B) {
	g := benchGroup(b)
	pt, _, _ := g.RandPoint(rand.Reader)
	enc := g.MarshalPoint(pt)
	b.Run("marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.MarshalPoint(pt)
		}
	})
	b.Run("unmarshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.UnmarshalPoint(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScalarMultAblation compares the windowed multiplier against the
// binary double-and-add ladder it replaced.
func BenchmarkScalarMultAblation(b *testing.B) {
	g := benchGroup(b)
	pt, _, _ := g.RandPoint(rand.Reader)
	k, _ := g.Scalars().Rand(rand.Reader)
	b.Run("windowed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.ScalarMult(pt, k)
		}
	})
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.scalarMultBinary(pt, k)
		}
	})
}
