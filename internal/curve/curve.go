// Package curve implements the elliptic-curve group G1 used by SecCloud:
// the order-q subgroup of the supersingular curve
//
//	E(Fp): y² = x³ + x,  p ≡ 3 (mod 4),  #E(Fp) = p + 1 = h·q.
//
// Because E is supersingular with embedding degree 2, the distortion map
// φ(x, y) = (−x, i·y) sends G1 into E(Fp2) and turns the Tate pairing into
// the symmetric bilinear map ê : G1 × G1 → GT that the paper assumes.
//
// Scalar multiplication uses Jacobian coordinates internally to avoid
// modular inversions; the exported Point type is affine.
package curve

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"seccloud/internal/ff"
	"seccloud/internal/ops"
)

// ErrInvalidPoint reports a point that is not on the curve or not in G1.
var ErrInvalidPoint = errors.New("curve: invalid point")

// Group describes the concrete curve subgroup. A Group is immutable after
// construction and safe for concurrent use.
type Group struct {
	fp  *ff.Ctx
	sf  *ff.ScalarField
	p   *big.Int // field prime
	q   *big.Int // subgroup order
	h   *big.Int // cofactor, p + 1 = h·q
	gen *Point   // generator of G1

	counters *ops.Counters // expensive-op accounting, always on
}

// Point is an affine point on E(Fp), plus the point at infinity.
// The zero value is the point at infinity.
type Point struct {
	X, Y *big.Int
	Inf  bool
}

// NewGroup validates the supplied parameters and returns the group.
// gen must be a point of exact order q.
func NewGroup(p, q, h *big.Int, gen *Point) (*Group, error) {
	fp, err := ff.NewCtx(p)
	if err != nil {
		return nil, fmt.Errorf("curve: building field context: %w", err)
	}
	sf, err := ff.NewScalarField(q)
	if err != nil {
		return nil, fmt.Errorf("curve: building scalar field: %w", err)
	}
	// Check p + 1 == h·q.
	ord := new(big.Int).Mul(h, q)
	pp1 := new(big.Int).Add(p, big.NewInt(1))
	if ord.Cmp(pp1) != 0 {
		return nil, errors.New("curve: parameters do not satisfy p+1 = h·q")
	}
	g := &Group{
		fp: fp, sf: sf,
		p:        new(big.Int).Set(p),
		q:        new(big.Int).Set(q),
		h:        new(big.Int).Set(h),
		counters: new(ops.Counters),
	}
	if gen == nil || gen.Inf || !g.IsOnCurve(gen) {
		return nil, fmt.Errorf("curve: generator: %w", ErrInvalidPoint)
	}
	if !g.ScalarMult(gen, q).Inf {
		return nil, errors.New("curve: generator does not have order q")
	}
	g.gen = g.Copy(gen)
	return g, nil
}

// FieldCtx returns the Fp arithmetic context shared with the pairing.
func (g *Group) FieldCtx() *ff.Ctx { return g.fp }

// Counters exposes the group's expensive-operation counters. All parties
// constructed from the same parameter set share them; snapshot around a
// single-threaded section to attribute counts to one party.
func (g *Group) Counters() *ops.Counters { return g.counters }

// Scalars returns the Zq helper shared with the protocol layers.
func (g *Group) Scalars() *ff.ScalarField { return g.sf }

// P returns a copy of the field prime.
func (g *Group) P() *big.Int { return new(big.Int).Set(g.p) }

// Q returns a copy of the subgroup order.
func (g *Group) Q() *big.Int { return new(big.Int).Set(g.q) }

// Cofactor returns a copy of h = (p+1)/q.
func (g *Group) Cofactor() *big.Int { return new(big.Int).Set(g.h) }

// Generator returns a copy of the group generator.
func (g *Group) Generator() *Point { return g.Copy(g.gen) }

// Infinity returns the point at infinity (group identity).
func (g *Group) Infinity() *Point { return &Point{Inf: true} }

// Copy returns a deep copy of pt.
func (g *Group) Copy(pt *Point) *Point {
	if pt.Inf {
		return &Point{Inf: true}
	}
	return &Point{X: new(big.Int).Set(pt.X), Y: new(big.Int).Set(pt.Y)}
}

// Equal reports whether a and b are the same group element.
func (g *Group) Equal(a, b *Point) bool {
	if a.Inf || b.Inf {
		return a.Inf == b.Inf
	}
	return a.X.Cmp(b.X) == 0 && a.Y.Cmp(b.Y) == 0
}

// IsOnCurve reports whether pt satisfies y² = x³ + x over Fp.
func (g *Group) IsOnCurve(pt *Point) bool {
	if pt.Inf {
		return true
	}
	if pt.X == nil || pt.Y == nil || !g.fp.InField(pt.X) || !g.fp.InField(pt.Y) {
		return false
	}
	lhs := new(big.Int).Mul(pt.Y, pt.Y)
	lhs.Mod(lhs, g.p)
	rhs := new(big.Int).Mul(pt.X, pt.X)
	rhs.Mul(rhs, pt.X)
	rhs.Add(rhs, pt.X)
	rhs.Mod(rhs, g.p)
	return lhs.Cmp(rhs) == 0
}

// InSubgroup reports whether pt is on the curve and has order dividing q.
func (g *Group) InSubgroup(pt *Point) bool {
	if pt.Inf {
		return true
	}
	if !g.IsOnCurve(pt) {
		return false
	}
	// q·pt via a plain jacobian ladder: no window table (whose affine
	// entries would each cost a field inversion) and no final affine
	// conversion — only the accumulator's Z coordinate matters, since
	// Z = 0 is exactly the point at infinity.
	g.counters.AddPointMul()
	acc := &jacobian{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	for i := g.q.BitLen() - 1; i >= 0; i-- {
		acc = g.jacDouble(acc)
		if g.q.Bit(i) == 1 {
			acc = g.jacAddMixed(acc, pt)
		}
	}
	return acc.z.Sign() == 0
}

// Neg returns −pt.
func (g *Group) Neg(pt *Point) *Point {
	if pt.Inf {
		return &Point{Inf: true}
	}
	y := new(big.Int).Neg(pt.Y)
	y.Mod(y, g.p)
	return &Point{X: new(big.Int).Set(pt.X), Y: y}
}

// Add returns a + b using affine arithmetic.
func (g *Group) Add(a, b *Point) *Point {
	if a.Inf {
		return g.Copy(b)
	}
	if b.Inf {
		return g.Copy(a)
	}
	if a.X.Cmp(b.X) == 0 {
		ysum := new(big.Int).Add(a.Y, b.Y)
		ysum.Mod(ysum, g.p)
		if ysum.Sign() == 0 {
			return &Point{Inf: true}
		}
		return g.Double(a)
	}
	num := new(big.Int).Sub(b.Y, a.Y)
	den := new(big.Int).Sub(b.X, a.X)
	den.Mod(den, g.p)
	den.ModInverse(den, g.p)
	l := num.Mul(num, den)
	l.Mod(l, g.p)
	x3 := new(big.Int).Mul(l, l)
	x3.Sub(x3, a.X)
	x3.Sub(x3, b.X)
	x3.Mod(x3, g.p)
	y3 := new(big.Int).Sub(a.X, x3)
	y3.Mul(y3, l)
	y3.Sub(y3, a.Y)
	y3.Mod(y3, g.p)
	return &Point{X: x3, Y: y3}
}

// Double returns 2·a using affine arithmetic with the curve term a = 1:
// λ = (3x² + 1) / 2y.
func (g *Group) Double(a *Point) *Point {
	if a.Inf || a.Y.Sign() == 0 {
		return &Point{Inf: true}
	}
	num := new(big.Int).Mul(a.X, a.X)
	num.Mul(num, big.NewInt(3))
	num.Add(num, big.NewInt(1))
	den := new(big.Int).Lsh(a.Y, 1)
	den.ModInverse(den, g.p)
	l := num.Mul(num, den)
	l.Mod(l, g.p)
	x3 := new(big.Int).Mul(l, l)
	x3.Sub(x3, new(big.Int).Lsh(a.X, 1))
	x3.Mod(x3, g.p)
	y3 := new(big.Int).Sub(a.X, x3)
	y3.Mul(y3, l)
	y3.Sub(y3, a.Y)
	y3.Mod(y3, g.p)
	return &Point{X: x3, Y: y3}
}

// Sub returns a - b.
func (g *Group) Sub(a, b *Point) *Point { return g.Add(a, g.Neg(b)) }

// jacobian is an internal projective representation (x = X/Z², y = Y/Z³).
type jacobian struct {
	x, y, z *big.Int
}

func (g *Group) toJacobian(p *Point) *jacobian {
	if p.Inf {
		return &jacobian{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	}
	return &jacobian{
		x: new(big.Int).Set(p.X),
		y: new(big.Int).Set(p.Y),
		z: big.NewInt(1),
	}
}

func (g *Group) fromJacobian(j *jacobian) *Point {
	if j.z.Sign() == 0 {
		return &Point{Inf: true}
	}
	zinv := new(big.Int).ModInverse(j.z, g.p)
	zinv2 := new(big.Int).Mul(zinv, zinv)
	zinv2.Mod(zinv2, g.p)
	x := new(big.Int).Mul(j.x, zinv2)
	x.Mod(x, g.p)
	zinv3 := zinv2.Mul(zinv2, zinv)
	zinv3.Mod(zinv3, g.p)
	y := new(big.Int).Mul(j.y, zinv3)
	y.Mod(y, g.p)
	return &Point{X: x, Y: y}
}

// jacDouble doubles in place: standard Jacobian doubling for y² = x³ + a·x
// with a = 1 (M = 3X² + Z⁴).
func (g *Group) jacDouble(j *jacobian) *jacobian {
	if j.z.Sign() == 0 || j.y.Sign() == 0 {
		return &jacobian{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	}
	p := g.p
	yy := new(big.Int).Mul(j.y, j.y)
	yy.Mod(yy, p)
	s := new(big.Int).Mul(j.x, yy)
	s.Lsh(s, 2)
	s.Mod(s, p) // S = 4XY²
	xx := new(big.Int).Mul(j.x, j.x)
	xx.Mod(xx, p)
	zz := new(big.Int).Mul(j.z, j.z)
	zz.Mod(zz, p)
	z4 := new(big.Int).Mul(zz, zz)
	z4.Mod(z4, p)
	m := new(big.Int).Mul(xx, big.NewInt(3))
	m.Add(m, z4)
	m.Mod(m, p) // M = 3X² + Z⁴ (a = 1)
	x3 := new(big.Int).Mul(m, m)
	x3.Sub(x3, new(big.Int).Lsh(s, 1))
	x3.Mod(x3, p)
	y4 := new(big.Int).Mul(yy, yy)
	y4.Lsh(y4, 3)
	y4.Mod(y4, p) // 8Y⁴
	y3 := new(big.Int).Sub(s, x3)
	y3.Mul(y3, m)
	y3.Sub(y3, y4)
	y3.Mod(y3, p)
	z3 := new(big.Int).Mul(j.y, j.z)
	z3.Lsh(z3, 1)
	z3.Mod(z3, p)
	return &jacobian{x: x3, y: y3, z: z3}
}

// jacAddMixed adds the affine point b to j (mixed addition).
func (g *Group) jacAddMixed(j *jacobian, b *Point) *jacobian {
	if b.Inf {
		return j
	}
	if j.z.Sign() == 0 {
		return g.toJacobian(b)
	}
	p := g.p
	zz := new(big.Int).Mul(j.z, j.z)
	zz.Mod(zz, p)
	u2 := new(big.Int).Mul(b.X, zz)
	u2.Mod(u2, p)
	zzz := new(big.Int).Mul(zz, j.z)
	zzz.Mod(zzz, p)
	s2 := new(big.Int).Mul(b.Y, zzz)
	s2.Mod(s2, p)
	hh := new(big.Int).Sub(u2, j.x)
	hh.Mod(hh, p)
	r := new(big.Int).Sub(s2, j.y)
	r.Mod(r, p)
	if hh.Sign() == 0 {
		if r.Sign() == 0 {
			return g.jacDouble(j)
		}
		return &jacobian{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	}
	h2 := new(big.Int).Mul(hh, hh)
	h2.Mod(h2, p)
	h3 := new(big.Int).Mul(h2, hh)
	h3.Mod(h3, p)
	xh2 := new(big.Int).Mul(j.x, h2)
	xh2.Mod(xh2, p)
	x3 := new(big.Int).Mul(r, r)
	x3.Sub(x3, h3)
	x3.Sub(x3, new(big.Int).Lsh(xh2, 1))
	x3.Mod(x3, p)
	y3 := new(big.Int).Sub(xh2, x3)
	y3.Mul(y3, r)
	yh3 := new(big.Int).Mul(j.y, h3)
	y3.Sub(y3, yh3)
	y3.Mod(y3, p)
	z3 := new(big.Int).Mul(j.z, hh)
	z3.Mod(z3, p)
	return &jacobian{x: x3, y: y3, z: z3}
}

// normalizeJacobians converts jacobian points to affine form using one
// shared field inversion (Montgomery's batch-inversion trick): the Z
// coordinates are prefix-multiplied, the running product is inverted
// once, and each individual 1/Zᵢ is recovered with two multiplications.
// Entries at infinity (Z = 0) are skipped. out must have len(js).
func (g *Group) normalizeJacobians(js []*jacobian, out []*Point) {
	p := g.p
	prefix := make([]*big.Int, len(js))
	acc := big.NewInt(1)
	for i, j := range js {
		prefix[i] = new(big.Int).Set(acc)
		if j.z.Sign() != 0 {
			acc.Mul(acc, j.z)
			acc.Mod(acc, p)
		}
	}
	inv := new(big.Int).ModInverse(acc, p)
	for i := len(js) - 1; i >= 0; i-- {
		j := js[i]
		if j.z.Sign() == 0 {
			out[i] = &Point{Inf: true}
			continue
		}
		zinv := new(big.Int).Mul(inv, prefix[i])
		zinv.Mod(zinv, p)
		inv.Mul(inv, j.z)
		inv.Mod(inv, p)
		zinv2 := new(big.Int).Mul(zinv, zinv)
		zinv2.Mod(zinv2, p)
		x := new(big.Int).Mul(j.x, zinv2)
		x.Mod(x, p)
		zinv3 := zinv2.Mul(zinv2, zinv)
		zinv3.Mod(zinv3, p)
		y := new(big.Int).Mul(j.y, zinv3)
		y.Mod(y, p)
		out[i] = &Point{X: x, Y: y}
	}
}

// scalarMultWindow is the fixed-window width used by ScalarMult: the
// accumulator absorbs w bits per iteration against a 2^w−1 entry table of
// small odd multiples, cutting the number of mixed additions by ~w×
// compared to binary double-and-add (see BenchmarkScalarMultAblation).
const scalarMultWindow = 4

// ScalarMult returns k·pt. Negative k is handled as (−k)·(−pt).
func (g *Group) ScalarMult(pt *Point, k *big.Int) *Point {
	if pt.Inf || k.Sign() == 0 {
		return &Point{Inf: true}
	}
	g.counters.AddPointMul()
	base := pt
	kk := k
	if k.Sign() < 0 {
		base = g.Neg(pt)
		kk = new(big.Int).Neg(k)
	}
	// Precompute 1·P … (2^w−1)·P. Mixed addition needs the table in
	// affine form, but building it with affine Add would pay one field
	// inversion per entry; instead the multiples are chained in
	// jacobian coordinates and normalized together with a single
	// shared inversion (Montgomery's batch-inversion trick).
	jt := make([]*jacobian, 1<<scalarMultWindow)
	jt[1] = g.toJacobian(base)
	for i := 2; i < len(jt); i++ {
		jt[i] = g.jacAddMixed(jt[i-1], base)
	}
	table := make([]*Point, len(jt))
	g.normalizeJacobians(jt[1:], table[1:])
	acc := &jacobian{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	bits := kk.BitLen()
	// Round the starting index up to a window boundary.
	start := ((bits + scalarMultWindow - 1) / scalarMultWindow) * scalarMultWindow
	for i := start - scalarMultWindow; i >= 0; i -= scalarMultWindow {
		for d := 0; d < scalarMultWindow; d++ {
			acc = g.jacDouble(acc)
		}
		var win uint
		for d := scalarMultWindow - 1; d >= 0; d-- {
			win = win<<1 | uint(kk.Bit(i+d))
		}
		if win != 0 {
			acc = g.jacAddMixed(acc, table[win])
		}
	}
	return g.fromJacobian(acc)
}

// scalarMultBinary is the classic double-and-add ladder, kept for the
// ablation benchmark and as a cross-check oracle in tests.
func (g *Group) scalarMultBinary(pt *Point, k *big.Int) *Point {
	if pt.Inf || k.Sign() == 0 {
		return &Point{Inf: true}
	}
	base := pt
	kk := k
	if k.Sign() < 0 {
		base = g.Neg(pt)
		kk = new(big.Int).Neg(k)
	}
	acc := &jacobian{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	for i := kk.BitLen() - 1; i >= 0; i-- {
		acc = g.jacDouble(acc)
		if kk.Bit(i) == 1 {
			acc = g.jacAddMixed(acc, base)
		}
	}
	return g.fromJacobian(acc)
}

// BaseMult returns k·G for the group generator G.
func (g *Group) BaseMult(k *big.Int) *Point { return g.ScalarMult(g.gen, k) }

// SumScalarMult returns Σ kᵢ·ptᵢ. Slices must have equal length.
//
// The sum is computed as one interleaved double-and-add: the jacobian
// accumulator is doubled once per bit of the longest scalar and absorbs
// every point whose scalar has that bit set, so the doubling work —
// which dominates an individual ScalarMult — is paid once for the whole
// batch instead of once per point. For n points with b-bit scalars the
// cost is b doublings plus ~nb/2 mixed additions, versus n·b doublings
// for n separate multiplications. This is what makes cross-user
// aggregate verification cheap: the batch's U_A accumulation shares one
// doubling ladder across every tenant's items.
func (g *Group) SumScalarMult(pts []*Point, ks []*big.Int) (*Point, error) {
	if len(pts) != len(ks) {
		return nil, fmt.Errorf("curve: mismatched lengths %d vs %d", len(pts), len(ks))
	}
	bases := make([]*Point, 0, len(pts))
	scalars := make([]*big.Int, 0, len(ks))
	maxBits := 0
	for i, pt := range pts {
		k := ks[i]
		if pt.Inf || k.Sign() == 0 {
			continue
		}
		if k.Sign() < 0 {
			pt = g.Neg(pt)
			k = new(big.Int).Neg(k)
		}
		bases = append(bases, pt)
		scalars = append(scalars, k)
		if b := k.BitLen(); b > maxBits {
			maxBits = b
		}
		g.counters.AddPointMul()
	}
	acc := &jacobian{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	for i := maxBits - 1; i >= 0; i-- {
		acc = g.jacDouble(acc)
		for j, k := range scalars {
			if k.Bit(i) == 1 {
				acc = g.jacAddMixed(acc, bases[j])
			}
		}
	}
	return g.fromJacobian(acc), nil
}

// RandPoint returns a uniformly random element of G1 together with the
// discrete log k such that the point equals k·G (useful in tests).
func (g *Group) RandPoint(r io.Reader) (*Point, *big.Int, error) {
	k, err := g.sf.Rand(r)
	if err != nil {
		return nil, nil, fmt.Errorf("curve: random point: %w", err)
	}
	return g.BaseMult(k), k, nil
}
