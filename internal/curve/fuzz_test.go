package curve

import "testing"

// FuzzUnmarshalPoint ensures attacker-controlled point encodings never
// panic the decoder, and that anything accepted is genuinely on the curve
// and re-encodes canonically.
func FuzzUnmarshalPoint(f *testing.F) {
	g, err := NewGroup(testP, testQ, testH, &Point{X: testGx, Y: testGy})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(g.MarshalPoint(g.Generator()))
	f.Add(g.MarshalPoint(g.Infinity()))
	f.Add([]byte{})
	f.Add([]byte{0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		pt, err := g.UnmarshalPoint(data)
		if err != nil {
			return
		}
		if !g.IsOnCurve(pt) {
			t.Fatal("decoder accepted an off-curve point")
		}
		re := g.MarshalPoint(pt)
		pt2, err := g.UnmarshalPoint(re)
		if err != nil {
			t.Fatalf("canonical re-encoding failed to decode: %v", err)
		}
		if !g.Equal(pt, pt2) {
			t.Fatal("re-encoding drifted")
		}
	})
}
