package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode ensures the frame decoder never panics or over-allocates on
// attacker-controlled bytes; any parse outcome is fine, crashing is not.
func FuzzDecode(f *testing.F) {
	// Seed with every valid message kind plus junk.
	for _, m := range sampleMessages() {
		data, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// Corrupted frames: every valid encoding with single-byte flips at a
	// spread of offsets — the exact damage the fault injector inflicts.
	for _, m := range sampleMessages() {
		data, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		for _, off := range []int{0, 1, len(data) / 2, len(data) - 1} {
			bad := append([]byte(nil), data...)
			bad[off] ^= 0xff
			f.Add(bad)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err == nil && msg == nil {
			t.Fatal("nil message without error")
		}
	})
}

// FuzzReadMessage covers the length-prefixed stream reader, including
// hostile length prefixes.
func FuzzReadMessage(f *testing.F) {
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, &StoreResponse{OK: true}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	// Corrupted stream frames: valid frame with body damage, a truncated
	// frame, and a frame whose prefix overstates the body.
	full := append([]byte(nil), buf.Bytes()...)
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)
	f.Add(full[:len(full)-2])
	overlong := append([]byte{0x00, 0x00, 0x01, 0x00}, full[4:]...)
	f.Add(overlong)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, n, err := ReadMessage(bytes.NewReader(data))
		if err == nil && n <= 0 {
			t.Fatal("successful read consumed no bytes")
		}
		if n > len(data)+4 {
			t.Fatalf("claimed to consume %d of %d bytes", n, len(data))
		}
	})
}

// FuzzHandshake hammers the version-negotiation decoders with
// attacker-controlled bytes: both hello parsers must never panic, and
// anything they accept must re-encode to the identical bytes (the hellos
// are fixed-width, so accepted input is canonical by construction).
func FuzzHandshake(f *testing.F) {
	f.Add(EncodeClientHello(ClientHello{Min: 1, Max: 2}))
	f.Add(EncodeServerHello(ServerHello{Version: 2}))
	f.Add(EncodeServerHello(ServerHello{Version: 0}))
	f.Add([]byte(HandshakeMagic))
	f.Add([]byte{})
	f.Add([]byte{'S', 'E', 'C', 'W', 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x00, 0x00, 0x00, 0x10, 0, 1, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if ch, err := DecodeClientHello(data); err == nil {
			if ch.Min == 0 || ch.Min > ch.Max {
				t.Fatalf("decoder accepted illegal range %+v", ch)
			}
			if !bytes.Equal(EncodeClientHello(ch), data) {
				t.Fatalf("accepted client hello is not canonical: %x", data)
			}
			// An accepted offer must negotiate deterministically against
			// this build's range: either a version inside both ranges or
			// a typed mismatch, never a crash or an out-of-range pick.
			if v, err := Negotiate(MinProto, MaxProto, ch); err == nil {
				if v < MinProto || v > MaxProto || v < ch.Min || v > ch.Max {
					t.Fatalf("negotiated %d outside ranges srv [%d,%d] cli %+v", v, MinProto, MaxProto, ch)
				}
			}
		}
		if sh, err := DecodeServerHello(data); err == nil {
			if !bytes.Equal(EncodeServerHello(sh), data) {
				t.Fatalf("accepted server hello is not canonical: %x", data)
			}
		}
		// The stream readers must classify arbitrary prefixes without
		// panicking.
		_, _ = ReadServerHello(bytes.NewReader(data))
		var prefix [4]byte
		copy(prefix[:], HandshakeMagic)
		_, _ = ReadClientHelloTail(bytes.NewReader(data), prefix)
	})
}

// FuzzRoundtrip: anything we can decode must re-encode and decode to the
// same kind (weak idempotence; exact equality needs typed comparison).
func FuzzRoundtrip(f *testing.F) {
	for _, m := range sampleMessages() {
		data, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(msg)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		msg2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if msg.Kind() != msg2.Kind() {
			t.Fatalf("kind drifted: %q → %q", msg.Kind(), msg2.Kind())
		}
	})
}
