package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// The whole sniffing design rests on one arithmetic fact: the magic read
// as a big-endian uint32 is above MaxFrameLen, so a server peeking four
// bytes can never mistake a ClientHello for a legal legacy length prefix.
func TestHandshakeMagicOutsideFrameRange(t *testing.T) {
	var asLen int
	for _, b := range []byte(HandshakeMagic) {
		asLen = asLen<<8 | int(b)
	}
	if asLen <= MaxFrameLen {
		t.Fatalf("magic %q as length prefix = %d, inside MaxFrameLen %d: sniffing is ambiguous", HandshakeMagic, asLen, MaxFrameLen)
	}
	var prefix [4]byte
	copy(prefix[:], HandshakeMagic)
	if !IsHandshakeMagic(prefix) {
		t.Fatal("IsHandshakeMagic rejects the magic itself")
	}
	if IsHandshakeMagic([4]byte{0, 0, 1, 0}) {
		t.Fatal("IsHandshakeMagic accepts a plausible legacy length prefix")
	}
}

func TestClientHelloRoundtrip(t *testing.T) {
	for _, h := range []ClientHello{
		{Min: 1, Max: 1},
		{Min: 1, Max: 2},
		{Min: 2, Max: 2},
		{Min: 1, Max: 65535},
	} {
		got, err := DecodeClientHello(EncodeClientHello(h))
		if err != nil {
			t.Fatalf("roundtrip %+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("roundtrip %+v: got %+v", h, got)
		}
	}
}

func TestDecodeClientHelloRejects(t *testing.T) {
	cases := map[string][]byte{
		"short":          []byte("SECW"),
		"long":           append(EncodeClientHello(ClientHello{Min: 1, Max: 2}), 0),
		"bad magic":      {'S', 'E', 'C', 'X', 0, 1, 0, 2},
		"zero min":       {'S', 'E', 'C', 'W', 0, 0, 0, 2},
		"inverted range": {'S', 'E', 'C', 'W', 0, 2, 0, 1},
	}
	for name, data := range cases {
		if _, err := DecodeClientHello(data); !errors.Is(err, ErrBadHandshake) {
			t.Errorf("%s: got %v, want ErrBadHandshake", name, err)
		}
	}
}

func TestServerHelloRoundtrip(t *testing.T) {
	for _, h := range []ServerHello{{Version: 0}, {Version: 1}, {Version: 2}, {Version: 65535}} {
		got, err := DecodeServerHello(EncodeServerHello(h))
		if err != nil {
			t.Fatalf("roundtrip %+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("roundtrip %+v: got %+v", h, got)
		}
	}
}

func TestDecodeServerHelloRejects(t *testing.T) {
	cases := map[string][]byte{
		"short":        []byte("SECW"),
		"bad magic":    {'X', 'E', 'C', 'W', 0, 1, 0, 0},
		"dirty reserved": {'S', 'E', 'C', 'W', 0, 1, 0, 7},
	}
	for name, data := range cases {
		if _, err := DecodeServerHello(data); !errors.Is(err, ErrBadHandshake) {
			t.Errorf("%s: got %v, want ErrBadHandshake", name, err)
		}
	}
}

// The negotiation table from DESIGN.md §11: highest mutual version wins,
// disjoint ranges refuse.
func TestNegotiate(t *testing.T) {
	cases := []struct {
		name             string
		srvMin, srvMax   uint16
		cliMin, cliMax   uint16
		want             uint16
		wantMismatch     bool
	}{
		{"both v1..v2", 1, 2, 1, 2, 2, false},
		{"old client", 1, 2, 1, 1, 1, false},
		{"new-only client", 1, 2, 2, 2, 2, false},
		{"future client overlaps", 1, 2, 2, 9, 2, false},
		{"client too new", 1, 2, 3, 9, 0, true},
		{"server too new", 3, 4, 1, 2, 0, true},
		{"exact match", 2, 2, 2, 2, 2, false},
	}
	for _, c := range cases {
		got, err := Negotiate(c.srvMin, c.srvMax, ClientHello{Min: c.cliMin, Max: c.cliMax})
		if c.wantMismatch {
			if !errors.Is(err, ErrVersionMismatch) {
				t.Errorf("%s: got (%d, %v), want ErrVersionMismatch", c.name, got, err)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("%s: got (%d, %v), want %d", c.name, got, err, c.want)
		}
	}
	if _, err := Negotiate(0, 2, ClientHello{Min: 1, Max: 2}); !errors.Is(err, ErrBadHandshake) {
		t.Errorf("zero server min: got %v, want ErrBadHandshake", err)
	}
}

// Full client-side handshake against a scripted server.
func TestHandshakeClientSide(t *testing.T) {
	type rw struct {
		io.Reader
		io.Writer
	}

	// Server answers v2: client accepts.
	var sent bytes.Buffer
	conn := rw{bytes.NewReader(EncodeServerHello(ServerHello{Version: 2})), &sent}
	v, err := Handshake(conn, MinProto, MaxProto)
	if err != nil || v != 2 {
		t.Fatalf("handshake: got (%d, %v), want 2", v, err)
	}
	offer, err := DecodeClientHello(sent.Bytes())
	if err != nil || offer.Min != MinProto || offer.Max != MaxProto {
		t.Fatalf("client offered %+v (err %v), want [%d, %d]", offer, err, MinProto, MaxProto)
	}

	// Version 0 is the explicit refusal.
	conn = rw{bytes.NewReader(EncodeServerHello(ServerHello{Version: 0})), io.Discard}
	if _, err := Handshake(conn, MinProto, MaxProto); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("refusal: got %v, want ErrVersionMismatch", err)
	}

	// A server choosing outside the offer is a protocol violation.
	conn = rw{bytes.NewReader(EncodeServerHello(ServerHello{Version: 9})), io.Discard}
	if _, err := Handshake(conn, MinProto, MaxProto); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("out-of-offer: got %v, want ErrVersionMismatch", err)
	}

	// A server that hangs up mid-hello is a truncation, not a mismatch.
	conn = rw{bytes.NewReader([]byte("SECW")), io.Discard}
	if _, err := Handshake(conn, MinProto, MaxProto); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated hello: got %v, want ErrTruncated", err)
	}
}

func TestReadClientHelloTail(t *testing.T) {
	full := EncodeClientHello(ClientHello{Min: 1, Max: 2})
	var prefix [4]byte
	copy(prefix[:], full[:4])
	h, err := ReadClientHelloTail(bytes.NewReader(full[4:]), prefix)
	if err != nil || h.Min != 1 || h.Max != 2 {
		t.Fatalf("tail read: got (%+v, %v)", h, err)
	}
	if _, err := ReadClientHelloTail(bytes.NewReader(full[4:6]), prefix); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated tail: got %v, want ErrTruncated", err)
	}
}
