// Versioned transport handshake for the public daemon socket.
//
// The legacy framing (a 4-byte big-endian length followed by a gob frame)
// carried no magic and no version: every peer had to speak byte-identical
// framing forever. Daemon mode replaces the bare stream with a negotiated
// one: a connecting client first sends an 8-byte ClientHello ("SECW" magic
// plus the [min, max] protocol range it speaks), the server answers with an
// 8-byte ServerHello naming the highest mutually supported version, and
// both sides then exchange frames under that version.
//
// Back-compat is structural, not flag-day: the magic "SECW" read as a
// big-endian uint32 (0x53454357) is far above MaxFrameLen, so the first
// four bytes of a connection unambiguously distinguish a ClientHello from
// a legacy v1 length prefix. A server that sniffs the magic runs the
// negotiation; anything else is a v1 client speaking bare frames, which
// remains fully supported (ProtoV1 is the current frame format).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// HandshakeMagic opens both hello messages. As a big-endian uint32 it
// exceeds MaxFrameLen, so it can never be confused with a legacy length
// prefix (see TestHandshakeMagicOutsideFrameRange).
const HandshakeMagic = "SECW"

// Protocol versions. ProtoV1 is the pre-handshake wire format (bare
// length-prefixed gob frames, CRC-protected) kept for back-compat; a v1
// peer sends no hello at all. ProtoV2 speaks the identical frame codec but
// arrives through the negotiated handshake, giving future versions a place
// to change framing without breaking deployed peers.
const (
	ProtoV1 uint16 = 1
	ProtoV2 uint16 = 2

	// MinProto..MaxProto is the range this build implements.
	MinProto = ProtoV1
	MaxProto = ProtoV2
)

// helloLen is the encoded size of both hello messages.
const helloLen = 8

// ErrBadHandshake marks a malformed or unacceptable hello.
var ErrBadHandshake = errors.New("wire: bad handshake")

// ErrVersionMismatch marks a handshake with no mutually supported version.
var ErrVersionMismatch = errors.New("wire: no mutually supported protocol version")

// ClientHello is the connecting side's offer: the inclusive protocol
// range it can speak.
type ClientHello struct {
	Min uint16
	Max uint16
}

// ServerHello is the accepting side's answer. Version 0 is an explicit
// refusal (no mutual version); the server closes the connection after
// sending it.
type ServerHello struct {
	Version uint16
}

// IsHandshakeMagic reports whether the first four bytes of a connection
// open a handshake rather than a legacy v1 frame.
func IsHandshakeMagic(prefix [4]byte) bool {
	return string(prefix[:]) == HandshakeMagic
}

// EncodeClientHello renders h as its 8-byte wire form.
func EncodeClientHello(h ClientHello) []byte {
	buf := make([]byte, helloLen)
	copy(buf, HandshakeMagic)
	binary.BigEndian.PutUint16(buf[4:], h.Min)
	binary.BigEndian.PutUint16(buf[6:], h.Max)
	return buf
}

// DecodeClientHello parses an 8-byte ClientHello. It rejects bad magic,
// short input, an inverted range, and a zero minimum (version 0 is the
// refusal sentinel, never a speakable version).
func DecodeClientHello(data []byte) (ClientHello, error) {
	if len(data) != helloLen {
		return ClientHello{}, fmt.Errorf("wire: client hello is %d bytes, want %d: %w", len(data), helloLen, ErrBadHandshake)
	}
	var prefix [4]byte
	copy(prefix[:], data)
	if !IsHandshakeMagic(prefix) {
		return ClientHello{}, fmt.Errorf("wire: client hello magic %q: %w", data[:4], ErrBadHandshake)
	}
	h := ClientHello{
		Min: binary.BigEndian.Uint16(data[4:]),
		Max: binary.BigEndian.Uint16(data[6:]),
	}
	if h.Min == 0 || h.Min > h.Max {
		return ClientHello{}, fmt.Errorf("wire: client hello offers versions [%d, %d]: %w", h.Min, h.Max, ErrBadHandshake)
	}
	return h, nil
}

// EncodeServerHello renders h as its 8-byte wire form (two trailing bytes
// are reserved and zero).
func EncodeServerHello(h ServerHello) []byte {
	buf := make([]byte, helloLen)
	copy(buf, HandshakeMagic)
	binary.BigEndian.PutUint16(buf[4:], h.Version)
	return buf
}

// DecodeServerHello parses an 8-byte ServerHello. A Version of 0 decodes
// successfully — it is the server's explicit refusal, which the client
// surfaces as ErrVersionMismatch via Negotiate's caller.
func DecodeServerHello(data []byte) (ServerHello, error) {
	if len(data) != helloLen {
		return ServerHello{}, fmt.Errorf("wire: server hello is %d bytes, want %d: %w", len(data), helloLen, ErrBadHandshake)
	}
	var prefix [4]byte
	copy(prefix[:], data)
	if !IsHandshakeMagic(prefix) {
		return ServerHello{}, fmt.Errorf("wire: server hello magic %q: %w", data[:4], ErrBadHandshake)
	}
	if rsv := binary.BigEndian.Uint16(data[6:]); rsv != 0 {
		return ServerHello{}, fmt.Errorf("wire: server hello reserved bytes %#04x: %w", rsv, ErrBadHandshake)
	}
	return ServerHello{Version: binary.BigEndian.Uint16(data[4:])}, nil
}

// Negotiate picks the protocol version for a connection: the highest
// version inside both the server's [srvMin, srvMax] range and the client's
// offer. It returns ErrVersionMismatch when the ranges are disjoint.
func Negotiate(srvMin, srvMax uint16, offer ClientHello) (uint16, error) {
	if srvMin == 0 || srvMin > srvMax {
		return 0, fmt.Errorf("wire: server supports versions [%d, %d]: %w", srvMin, srvMax, ErrBadHandshake)
	}
	v := srvMax
	if offer.Max < v {
		v = offer.Max
	}
	if v < srvMin || v < offer.Min {
		return 0, fmt.Errorf("wire: server speaks [%d, %d], client offers [%d, %d]: %w",
			srvMin, srvMax, offer.Min, offer.Max, ErrVersionMismatch)
	}
	return v, nil
}

// WriteClientHello sends the client's offer.
func WriteClientHello(w io.Writer, h ClientHello) error {
	if _, err := w.Write(EncodeClientHello(h)); err != nil {
		return fmt.Errorf("wire: writing client hello: %w", err)
	}
	return nil
}

// WriteServerHello sends the server's answer.
func WriteServerHello(w io.Writer, h ServerHello) error {
	if _, err := w.Write(EncodeServerHello(h)); err != nil {
		return fmt.Errorf("wire: writing server hello: %w", err)
	}
	return nil
}

// ReadServerHello reads and parses the server's 8-byte answer.
func ReadServerHello(r io.Reader) (ServerHello, error) {
	buf := make([]byte, helloLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return ServerHello{}, fmt.Errorf("wire: reading server hello (%v): %w", err, ErrTruncated)
	}
	return DecodeServerHello(buf)
}

// ReadClientHelloTail reads the 4 bytes of a ClientHello that follow an
// already-sniffed magic prefix and parses the whole hello. Servers use it
// after peeking the first four bytes of a fresh connection.
func ReadClientHelloTail(r io.Reader, prefix [4]byte) (ClientHello, error) {
	buf := make([]byte, helloLen)
	copy(buf, prefix[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return ClientHello{}, fmt.Errorf("wire: reading client hello (%v): %w", err, ErrTruncated)
	}
	return DecodeClientHello(buf)
}

// Handshake runs the client side of the negotiation on conn: it offers
// [min, max] and returns the version the server chose. A server that
// answers with version 0 (explicit refusal) or a version outside the
// offered range yields ErrVersionMismatch.
func Handshake(conn io.ReadWriter, min, max uint16) (uint16, error) {
	if err := WriteClientHello(conn, ClientHello{Min: min, Max: max}); err != nil {
		return 0, err
	}
	sh, err := ReadServerHello(conn)
	if err != nil {
		return 0, err
	}
	if sh.Version < min || sh.Version > max {
		return 0, fmt.Errorf("wire: server chose version %d outside offer [%d, %d]: %w",
			sh.Version, min, max, ErrVersionMismatch)
	}
	return sh.Version, nil
}
