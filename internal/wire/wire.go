// Package wire defines the protocol messages exchanged between SecCloud
// parties (cloud user, cloud server, designated agency) and a framed codec
// for moving them across transports.
//
// Messages are deliberately plain data — byte slices, strings, integers —
// with all cryptographic objects pre-marshaled by the protocol layer. This
// keeps the wire format independent of the crypto internals and makes byte
// accounting (the paper's transmission-cost C_trans) exact.
//
// Framing: a 4-byte big-endian length followed by a gob-encoded frame
// carrying the message kind and its encoded body. Each frame is
// self-contained so connections can be resumed message-by-message.
package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxFrameLen bounds a single message frame (64 MiB); protects servers
// from memory-exhaustion via forged length prefixes.
const MaxFrameLen = 64 << 20

// Common errors. ErrCorrupt and ErrTruncated are the typed taxonomy the
// transports rely on: both mark frame-level damage (retryable — the bytes,
// not the peer's logic, failed), as opposed to protocol-level errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum length")
	ErrUnknownKind   = errors.New("wire: unknown message kind")
	// ErrCorrupt marks a frame whose bytes do not parse as a message.
	ErrCorrupt = errors.New("wire: corrupted frame")
	// ErrTruncated marks a stream that ended mid-frame.
	ErrTruncated = errors.New("wire: truncated frame")
)

// Message is any protocol message.
type Message interface {
	// Kind returns the stable type tag used on the wire.
	Kind() string
}

// --- crypto carriers -------------------------------------------------------

// IBSig carries a raw identity-based signature (U, V) — publicly
// verifiable; used for warrants and commitment-root signatures.
type IBSig struct {
	U []byte
	V []byte
}

// BlockSig carries a designated-verifier block signature: the commitment
// point U plus one Σ per designated verifier identity, exactly the paper's
// σ_i = (U_i, Σ_i, Σ'_i) generalized to any verifier set.
type BlockSig struct {
	SignerID string
	U        []byte
	Sigma    map[string][]byte // verifier ID → marshaled GT element
}

// Warrant is the delegation token the user hands to the DA (§V-D):
// "a warrant include the identity of the delegatee and the expired time".
type Warrant struct {
	UserID       string
	DelegateID   string
	JobID        string
	NotAfterUnix int64
	Sig          IBSig // user's signature over the warrant body
}

// Body returns the byte string the warrant signature covers.
func (w *Warrant) Body() []byte {
	return []byte(fmt.Sprintf("warrant|user=%s|delegate=%s|job=%s|notafter=%d",
		w.UserID, w.DelegateID, w.JobID, w.NotAfterUnix))
}

// TaskSpec is one sub-task: function name/argument plus the position
// vector p_i of its input blocks.
type TaskSpec struct {
	FuncName  string
	Arg       int64
	Positions []uint64
}

// ProofStep is one sibling in a Merkle authentication path.
type ProofStep struct {
	Hash  []byte
	Right bool
}

// --- protocol messages ------------------------------------------------------

// StoreRequest uploads data blocks with their designated signatures
// (Protocol II, "Secure cloud storage").
type StoreRequest struct {
	UserID    string
	Positions []uint64
	Blocks    [][]byte
	Sigs      []BlockSig
}

func (*StoreRequest) Kind() string { return "store_req" }

// StoreResponse acknowledges an upload.
type StoreResponse struct {
	OK    bool
	Error string
}

func (*StoreResponse) Kind() string { return "store_resp" }

// StorageAuditRequest asks the server to return blocks and signatures at
// sampled positions so the DA can check stored-data integrity.
type StorageAuditRequest struct {
	UserID    string
	Positions []uint64
	Warrant   Warrant
}

func (*StorageAuditRequest) Kind() string { return "staudit_req" }

// StorageAuditResponse returns the requested blocks and signatures.
type StorageAuditResponse struct {
	Blocks [][]byte
	Sigs   []BlockSig
	Error  string
}

func (*StorageAuditResponse) Kind() string { return "staudit_resp" }

// ComputeRequest submits a computing job F with positions P
// (Protocol III, "Secure cloud computing").
type ComputeRequest struct {
	UserID string
	JobID  string
	Tasks  []TaskSpec
}

func (*ComputeRequest) Kind() string { return "compute_req" }

// ComputeResponse returns results Y, the Merkle commitment root R and the
// server's signature Sig_CS(R).
type ComputeResponse struct {
	JobID    string
	ServerID string
	Results  [][]byte
	Root     []byte
	RootSig  IBSig
	Error    string
}

func (*ComputeResponse) Kind() string { return "compute_resp" }

// ChallengeRequest is the DA's audit challenge: sampled sub-task indices
// plus the delegation warrant (Audit Challenge Step).
type ChallengeRequest struct {
	JobID   string
	Indices []uint64
	Warrant Warrant
}

func (*ChallengeRequest) Kind() string { return "challenge_req" }

// ChallengeItem is the server's answer for one sampled index: the input
// blocks with their designated signatures, the claimed result, and the
// Merkle authentication path (Audit Response Step).
type ChallengeItem struct {
	Index     uint64
	Task      TaskSpec
	Blocks    [][]byte
	Sigs      []BlockSig
	Result    []byte
	ProofPath []ProofStep
}

// ChallengeResponse carries all sampled openings.
type ChallengeResponse struct {
	JobID string
	Items []ChallengeItem
	Error string
}

func (*ChallengeResponse) Kind() string { return "challenge_resp" }

// UpdateRequest replaces one stored block (dynamic storage extension;
// the static paper protocol is extended following the partially-dynamic
// PDP line of work it cites [9][10]). Auth is the user's signature over
// UpdateAuthBody, binding user, position, new content, and a sequence
// number that the server enforces to be strictly increasing per user
// (replay protection).
type UpdateRequest struct {
	UserID   string
	Position uint64
	Seq      uint64
	Block    []byte
	Sig      BlockSig
	Auth     IBSig
}

func (*UpdateRequest) Kind() string { return "update_req" }

// UpdateAuthBody is the byte string Auth covers.
func (r *UpdateRequest) UpdateAuthBody() []byte {
	return authBody("update", r.UserID, r.Position, r.Seq, r.Block)
}

// DeleteRequest removes one stored block, with the same authentication
// and replay protection as UpdateRequest.
type DeleteRequest struct {
	UserID   string
	Position uint64
	Seq      uint64
	Auth     IBSig
}

func (*DeleteRequest) Kind() string { return "delete_req" }

// DeleteAuthBody is the byte string Auth covers.
func (r *DeleteRequest) DeleteAuthBody() []byte {
	return authBody("delete", r.UserID, r.Position, r.Seq, nil)
}

// authBody frames a mutation authorization.
func authBody(op, user string, pos, seq uint64, block []byte) []byte {
	head := fmt.Sprintf("seccloud/mutate|op=%s|user=%s|pos=%d|seq=%d|", op, user, pos, seq)
	return append([]byte(head), block...)
}

// PartialRequest asks a threshold share-holder for its partial designated
// verifications: one partial per base point (the eq. 5/7 pairing argument,
// marshaled). A batched audit sends a single base (the aggregated U_A);
// the per-item blame fallback packs every item's base into one request so
// blame attribution still costs one quorum round, not one per item.
type PartialRequest struct {
	// VerifierID names the dealt verifier key the partials must be for.
	VerifierID string
	// Bases are the marshaled G1 base points to pair the share against.
	Bases [][]byte
}

func (*PartialRequest) Kind() string { return "partial_req" }

// PartialProof carries a marshaled threshold partial with its DLEQ proof:
// T = ê(base, share_i) plus the (A1, A2, Z) transcript binding T to the
// share's public Feldman commitment.
type PartialProof struct {
	T  []byte
	A1 []byte
	A2 []byte
	Z  []byte
}

// PartialResponse returns one share-holder's partials, aligned with the
// request's Bases. Error marks a protocol-level refusal; since only the
// addressed share-holder can produce these bytes, a malformed or refused
// response is attributed to the AUDITOR, never to the storage server
// under audit.
type PartialResponse struct {
	// Index is the share-holder's 1-based share index.
	Index    int
	Partials []PartialProof
	Error    string
}

func (*PartialResponse) Kind() string { return "partial_resp" }

// OverloadResponse is a server's typed shed reply: the request was NOT
// executed because the server's admission queue is full. It is distinct
// from ErrorResponse so clients can classify it as a *non-retryable*
// overload signal — retrying into a saturated server only amplifies the
// storm — and back off for RetryAfterMillis instead. Audit layers must
// record a shed round as an overload outcome, never as a bad proof: the
// server answered honestly that it is busy, it did not fail a check.
type OverloadResponse struct {
	// RetryAfterMillis is the server's backoff hint in milliseconds;
	// zero means "no hint".
	RetryAfterMillis int64
}

func (*OverloadResponse) Kind() string { return "overload" }

// ErrorResponse reports a protocol-level failure.
type ErrorResponse struct {
	Code string
	Msg  string
}

func (*ErrorResponse) Kind() string { return "error" }

// --- codec -------------------------------------------------------------------

// frame is the on-wire envelope. Sum is a CRC32 over Body: gob detects
// most structural damage, but a flipped byte inside a payload field can
// decode cleanly into *altered content* — which downstream crypto checks
// would then blame on the peer. The checksum turns silent payload
// corruption into a typed, retryable ErrCorrupt at the codec boundary,
// preserving the NetworkFault-vs-BadProof distinction the audit trail
// depends on.
type frame struct {
	Kind string
	Sum  uint32
	Body []byte
}

// factories maps kind tags to constructors for decoding.
var factories = map[string]func() Message{
	"store_req":      func() Message { return new(StoreRequest) },
	"store_resp":     func() Message { return new(StoreResponse) },
	"staudit_req":    func() Message { return new(StorageAuditRequest) },
	"staudit_resp":   func() Message { return new(StorageAuditResponse) },
	"compute_req":    func() Message { return new(ComputeRequest) },
	"compute_resp":   func() Message { return new(ComputeResponse) },
	"challenge_req":  func() Message { return new(ChallengeRequest) },
	"challenge_resp": func() Message { return new(ChallengeResponse) },
	"update_req":     func() Message { return new(UpdateRequest) },
	"delete_req":     func() Message { return new(DeleteRequest) },
	"partial_req":    func() Message { return new(PartialRequest) },
	"partial_resp":   func() Message { return new(PartialResponse) },
	"overload":       func() Message { return new(OverloadResponse) },
	"error":          func() Message { return new(ErrorResponse) },
}

// Encode serializes m into a self-contained frame.
func Encode(m Message) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(m); err != nil {
		return nil, fmt.Errorf("wire: encoding %s body: %w", m.Kind(), err)
	}
	var buf bytes.Buffer
	f := frame{Kind: m.Kind(), Sum: crc32.ChecksumIEEE(body.Bytes()), Body: body.Bytes()}
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("wire: encoding %s frame: %w", m.Kind(), err)
	}
	return buf.Bytes(), nil
}

// Decode parses a frame produced by Encode. Damaged bytes — whether from
// a hostile peer or a corrupting link — yield a typed error wrapping
// ErrCorrupt; Decode never panics, even on inputs that trip the gob
// decoder's internal invariants.
func Decode(data []byte) (m Message, err error) {
	// gob's decoder has historically panicked on certain malformed
	// streams; a corrupting transport must surface a typed error instead.
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("wire: decode panic on malformed frame (%v): %w", r, ErrCorrupt)
		}
	}()
	var f frame
	if derr := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); derr != nil {
		return nil, fmt.Errorf("wire: decoding frame (%v): %w", derr, ErrCorrupt)
	}
	if sum := crc32.ChecksumIEEE(f.Body); sum != f.Sum {
		return nil, fmt.Errorf("wire: frame checksum mismatch (got %08x, want %08x): %w",
			sum, f.Sum, ErrCorrupt)
	}
	mk, ok := factories[f.Kind]
	if !ok {
		return nil, fmt.Errorf("wire: kind %q: %w", f.Kind, ErrUnknownKind)
	}
	m = mk()
	if derr := gob.NewDecoder(bytes.NewReader(f.Body)).Decode(m); derr != nil {
		return nil, fmt.Errorf("wire: decoding %s body (%v): %w", f.Kind, derr, ErrCorrupt)
	}
	return m, nil
}

// WriteMessage writes one length-prefixed frame; it returns the total
// bytes written (prefix included) for transmission-cost accounting.
func WriteMessage(w io.Writer, m Message) (int, error) {
	data, err := Encode(m)
	if err != nil {
		return 0, err
	}
	if len(data) > MaxFrameLen {
		return 0, fmt.Errorf("wire: %s frame is %d bytes: %w", m.Kind(), len(data), ErrFrameTooLarge)
	}
	return WriteFrame(w, data)
}

// WriteFrame writes pre-encoded frame bytes with the length prefix. It
// exists so transports (and fault injectors) can put exact — possibly
// deliberately damaged — bytes on the wire. The MaxFrameLen bound holds
// on this path too: a frame every peer is required to refuse must never
// leave the sender, and the refusal happens before any byte is written so
// the stream stays usable.
func WriteFrame(w io.Writer, data []byte) (int, error) {
	if len(data) > MaxFrameLen {
		return 0, fmt.Errorf("wire: frame is %d bytes: %w", len(data), ErrFrameTooLarge)
	}
	var prefix [4]byte
	prefix[0] = byte(len(data) >> 24)
	prefix[1] = byte(len(data) >> 16)
	prefix[2] = byte(len(data) >> 8)
	prefix[3] = byte(len(data))
	if _, err := w.Write(prefix[:]); err != nil {
		return 0, fmt.Errorf("wire: writing frame prefix: %w", err)
	}
	n, err := w.Write(data)
	if err != nil {
		return 4 + n, fmt.Errorf("wire: writing frame body: %w", err)
	}
	return 4 + n, nil
}

// ReadMessage reads one length-prefixed frame; it returns the message and
// total bytes consumed. A stream that ends cleanly before any prefix byte
// returns io.EOF untouched; a stream that dies mid-frame returns a typed
// error wrapping ErrTruncated.
func ReadMessage(r io.Reader) (Message, int, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("wire: reading frame prefix (%v): %w", err, ErrTruncated)
	}
	n := int(prefix[0])<<24 | int(prefix[1])<<16 | int(prefix[2])<<8 | int(prefix[3])
	if n > MaxFrameLen {
		return nil, 4, fmt.Errorf("wire: advertised frame of %d bytes: %w", n, ErrFrameTooLarge)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, 4, fmt.Errorf("wire: reading frame body (%v): %w", err, ErrTruncated)
	}
	m, err := Decode(data)
	if err != nil {
		return nil, 4 + n, err
	}
	return m, 4 + n, nil
}
