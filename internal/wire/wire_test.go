package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"testing"
)

func sampleMessages() []Message {
	return []Message{
		&StoreRequest{
			UserID:    "alice",
			Positions: []uint64{0, 1},
			Blocks:    [][]byte{{1, 2}, {3, 4}},
			Sigs: []BlockSig{
				{SignerID: "alice", U: []byte{9}, Sigma: map[string][]byte{"cs": {8}, "da": {7}}},
				{SignerID: "alice", U: []byte{6}, Sigma: map[string][]byte{"cs": {5}}},
			},
		},
		&StoreResponse{OK: true},
		&StoreResponse{OK: false, Error: "nope"},
		&StorageAuditRequest{UserID: "alice", Positions: []uint64{3},
			Warrant: Warrant{UserID: "alice", DelegateID: "da", NotAfterUnix: 99,
				Sig: IBSig{U: []byte{1}, V: []byte{2}}}},
		&StorageAuditResponse{Blocks: [][]byte{{1}}, Sigs: []BlockSig{{SignerID: "a"}}},
		&ComputeRequest{UserID: "alice", JobID: "j1",
			Tasks: []TaskSpec{{FuncName: "sum", Arg: 3, Positions: []uint64{0, 1}}}},
		&ComputeResponse{JobID: "j1", ServerID: "cs", Results: [][]byte{{1}},
			Root: []byte{4}, RootSig: IBSig{U: []byte{1}, V: []byte{2}}},
		&ChallengeRequest{JobID: "j1", Indices: []uint64{2},
			Warrant: Warrant{UserID: "alice"}},
		&ChallengeResponse{JobID: "j1", Items: []ChallengeItem{{
			Index:     2,
			Task:      TaskSpec{FuncName: "sum", Positions: []uint64{2}},
			Blocks:    [][]byte{{1, 2}},
			Sigs:      []BlockSig{{SignerID: "alice"}},
			Result:    []byte{9},
			ProofPath: []ProofStep{{Hash: bytes.Repeat([]byte{7}, 32), Right: true}},
		}}},
		&UpdateRequest{UserID: "alice", Position: 4, Seq: 2, Block: []byte{1, 2},
			Sig:  BlockSig{SignerID: "alice", U: []byte{3}, Sigma: map[string][]byte{"cs": {4}}},
			Auth: IBSig{U: []byte{5}, V: []byte{6}}},
		&DeleteRequest{UserID: "alice", Position: 4, Seq: 3,
			Auth: IBSig{U: []byte{7}, V: []byte{8}}},
		&PartialRequest{VerifierID: "da", Bases: [][]byte{{1, 2}, {3}}},
		&PartialResponse{Index: 2, Partials: []PartialProof{
			{T: []byte{1}, A1: []byte{2}, A2: []byte{3}, Z: []byte{4}}}},
		&PartialResponse{Index: 4, Error: "no share"},
		&OverloadResponse{RetryAfterMillis: 250},
		&ErrorResponse{Code: "bad", Msg: "oops"},
	}
}

func TestMutationAuthBodies(t *testing.T) {
	up := &UpdateRequest{UserID: "u", Position: 1, Seq: 2, Block: []byte{9}}
	del := &DeleteRequest{UserID: "u", Position: 1, Seq: 2}
	// Update and delete authorizations must never collide, and every
	// field must be bound.
	if bytes.Equal(up.UpdateAuthBody(), del.DeleteAuthBody()) {
		t.Fatal("update and delete auth bodies collide")
	}
	up2 := *up
	up2.Seq = 3
	if bytes.Equal(up.UpdateAuthBody(), up2.UpdateAuthBody()) {
		t.Fatal("sequence number not bound in auth body")
	}
	up3 := *up
	up3.Block = []byte{8}
	if bytes.Equal(up.UpdateAuthBody(), up3.UpdateAuthBody()) {
		t.Fatal("block content not bound in auth body")
	}
	up4 := *up
	up4.Position = 2
	if bytes.Equal(up.UpdateAuthBody(), up4.UpdateAuthBody()) {
		t.Fatal("position not bound in auth body")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, m := range sampleMessages() {
		data, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%s): %v", m.Kind(), err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("Decode(%s): %v", m.Kind(), err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%s roundtrip mismatch:\nsent %#v\ngot  %#v", m.Kind(), m, got)
		}
	}
}

func TestKindsAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range sampleMessages() {
		if seen[m.Kind()] {
			continue // duplicates of the same type in the sample list are fine
		}
		seen[m.Kind()] = true
	}
	if len(seen) != len(factories) {
		t.Fatalf("sample covers %d kinds, factories has %d — keep them in sync", len(seen), len(factories))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not gob at all")); err == nil {
		t.Fatal("garbage frame accepted")
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	// Forge a frame with an unknown kind by re-encoding one.
	m := &StoreResponse{OK: true}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupting the kind string reliably requires crafting a frame; build
	// one directly through the encoder path instead.
	bad := frameWithKind(t, "mystery")
	if _, err := Decode(bad); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("got %v, want ErrUnknownKind", err)
	}
	_ = data
}

// frameWithKind builds an encoded frame with an arbitrary kind tag.
func frameWithKind(t *testing.T, kind string) []byte {
	t.Helper()
	// Reuse Encode's internals by temporarily registering nothing: craft
	// the frame by hand with the same gob layout.
	var buf bytes.Buffer
	type f struct {
		Kind string
		Sum  uint32
		Body []byte
	}
	body := []byte{1}
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(f{Kind: kind, Sum: crc32.ChecksumIEEE(body), Body: body}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteReadMessage(t *testing.T) {
	var buf bytes.Buffer
	var totalWritten int
	msgs := sampleMessages()
	for _, m := range msgs {
		n, err := WriteMessage(&buf, m)
		if err != nil {
			t.Fatalf("WriteMessage(%s): %v", m.Kind(), err)
		}
		if n <= 4 {
			t.Fatalf("implausible frame size %d", n)
		}
		totalWritten += n
	}
	if totalWritten != buf.Len() {
		t.Fatalf("reported %d bytes, buffer has %d", totalWritten, buf.Len())
	}
	var totalRead int
	for _, want := range msgs {
		got, n, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("ReadMessage: %v", err)
		}
		totalRead += n
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("stream roundtrip mismatch for %s", want.Kind())
		}
	}
	if totalRead != totalWritten {
		t.Fatalf("read %d bytes of %d written", totalRead, totalWritten)
	}
	if _, _, err := ReadMessage(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF on drained stream, got %v", err)
	}
}

func TestDecodeCorruptedFrameTypedError(t *testing.T) {
	// Flipping any single byte of a valid frame must yield ErrCorrupt (or,
	// for the kind tag, ErrUnknownKind) — never a panic or a misparse into
	// a different valid message.
	for _, m := range sampleMessages() {
		data, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(data); off++ {
			bad := append([]byte(nil), data...)
			bad[off] ^= 0xff
			got, err := Decode(bad)
			if err == nil {
				// A flip that lands in slack space can legitimately still
				// decode; it must at least decode to the same kind.
				if got.Kind() != m.Kind() {
					t.Fatalf("%s: flip at %d misparsed into %s", m.Kind(), off, got.Kind())
				}
				continue
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrUnknownKind) {
				t.Fatalf("%s: flip at %d gave untyped error %v", m.Kind(), off, err)
			}
		}
	}
}

func TestDecodeGarbageIsErrCorrupt(t *testing.T) {
	if _, err := Decode([]byte("not gob at all")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty frame: got %v, want ErrCorrupt", err)
	}
}

func TestReadMessagePartialPrefixIsErrTruncated(t *testing.T) {
	// A stream that dies mid-length-prefix is truncation, not clean EOF.
	if _, _, err := ReadMessage(bytes.NewReader([]byte{0x00, 0x01})); !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated", err)
	}
}

func TestReadMessageTruncatedBodyIsErrTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, &StoreResponse{OK: true}); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	if _, _, err := ReadMessage(trunc); !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated", err)
	}
}

func TestWriteFrameMatchesWriteMessage(t *testing.T) {
	m := &ChallengeRequest{JobID: "j", Indices: []uint64{1, 2}}
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	var viaFrame, viaMessage bytes.Buffer
	if _, err := WriteFrame(&viaFrame, data); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteMessage(&viaMessage, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaFrame.Bytes(), viaMessage.Bytes()) {
		t.Fatal("WriteFrame and WriteMessage produce different byte streams")
	}
	got, _, err := ReadMessage(&viaFrame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("WriteFrame output failed to round-trip")
	}
}

// Regression: the MaxFrameLen bound must hold on the write path too. A
// sender that emits an over-limit frame forces every honest peer to
// refuse it and tear the stream down, so the refusal belongs at the
// source — and before any bytes hit the wire, leaving the stream clean.
func TestWriteFrameRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteFrame(&buf, make([]byte, MaxFrameLen+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if n != 0 || buf.Len() != 0 {
		t.Fatalf("oversized frame leaked %d bytes onto the wire", buf.Len())
	}
	// Exactly at the limit is still legal.
	if _, err := WriteFrame(&buf, make([]byte, 16)); err != nil {
		t.Fatalf("in-bounds frame refused: %v", err)
	}
}

func TestReadMessageRejectsHugeFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // ~4 GiB advertised
	if _, _, err := ReadMessage(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadMessageTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteMessage(&buf, &StoreResponse{OK: true}); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	if _, _, err := ReadMessage(trunc); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestWarrantBodyBindsAllFields(t *testing.T) {
	base := Warrant{UserID: "u", DelegateID: "d", JobID: "j", NotAfterUnix: 10}
	variants := []Warrant{
		{UserID: "x", DelegateID: "d", JobID: "j", NotAfterUnix: 10},
		{UserID: "u", DelegateID: "x", JobID: "j", NotAfterUnix: 10},
		{UserID: "u", DelegateID: "d", JobID: "x", NotAfterUnix: 10},
		{UserID: "u", DelegateID: "d", JobID: "j", NotAfterUnix: 11},
	}
	for i, v := range variants {
		if bytes.Equal(base.Body(), v.Body()) {
			t.Fatalf("variant %d has same body as base; field not bound", i)
		}
	}
}
