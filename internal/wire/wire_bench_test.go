package wire

import (
	"bytes"
	"fmt"
	"testing"
)

func benchChallengeResponse(items, blockLen int) *ChallengeResponse {
	resp := &ChallengeResponse{JobID: "bench"}
	for i := 0; i < items; i++ {
		resp.Items = append(resp.Items, ChallengeItem{
			Index:  uint64(i),
			Task:   TaskSpec{FuncName: "sum", Positions: []uint64{uint64(i)}},
			Blocks: [][]byte{bytes.Repeat([]byte{byte(i)}, blockLen)},
			Sigs: []BlockSig{{
				SignerID: "user:bench",
				U:        bytes.Repeat([]byte{1}, 65),
				Sigma:    map[string][]byte{"da": bytes.Repeat([]byte{2}, 128)},
			}},
			Result: bytes.Repeat([]byte{3}, 8),
			ProofPath: []ProofStep{
				{Hash: bytes.Repeat([]byte{4}, 32), Right: true},
				{Hash: bytes.Repeat([]byte{5}, 32)},
			},
		})
	}
	return resp
}

func BenchmarkEncodeChallengeResponse(b *testing.B) {
	for _, items := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("items=%d", items), func(b *testing.B) {
			msg := benchChallengeResponse(items, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Encode(msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecodeChallengeResponse(b *testing.B) {
	for _, items := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("items=%d", items), func(b *testing.B) {
			data, err := Encode(benchChallengeResponse(items, 1024))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWriteReadRoundtrip(b *testing.B) {
	msg := benchChallengeResponse(8, 1024)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := WriteMessage(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, _, err := ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
