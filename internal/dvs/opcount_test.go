package dvs

import (
	"crypto/rand"
	"fmt"
	"testing"

	"seccloud/internal/ibc"
	"seccloud/internal/pairing"
)

// TestTableIIPairingCountsMeasured verifies the paper's Table II claim on
// *measured* operation counts, not just the analytic model: individual
// verification of τ designated signatures runs τ Miller loops on the
// verifier side, while batch verification runs exactly one pairing
// regardless of τ.
func TestTableIIPairingCountsMeasured(t *testing.T) {
	pp := pairing.InsecureTest256()
	sio, err := ibc.Setup(pp, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	scheme := NewScheme(sio.Params())
	verifier, err := sio.Extract("da:count")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sio.Extract("user:count")
	if err != nil {
		t.Fatal(err)
	}

	const tau = 12
	msgs := make([][]byte, tau)
	sigs := make([]*Designated, tau)
	for i := 0; i < tau; i++ {
		msgs[i] = []byte(fmt.Sprintf("count message %d", i))
		ds, err := scheme.SignDesignated(signer, msgs[i], rand.Reader, verifier.ID)
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = ds[0]
	}
	counters := pp.G1().Counters()

	// Warm the QID cache so hashing doesn't differ between the passes.
	_ = sio.Params().QID(signer.ID)

	before := counters.Snapshot()
	for i := 0; i < tau; i++ {
		if err := scheme.Verify(sigs[i], msgs[i], verifier); err != nil {
			t.Fatal(err)
		}
	}
	indiv := counters.Snapshot().Sub(before)
	if indiv.MillerLoops != tau {
		t.Fatalf("individual verification ran %d Miller loops, want %d", indiv.MillerLoops, tau)
	}

	items := make([]BatchItem, tau)
	for i := range items {
		items[i] = NewBatchItem(msgs[i], sigs[i])
	}
	before = counters.Snapshot()
	if err := scheme.BatchVerify(items, verifier); err != nil {
		t.Fatal(err)
	}
	batch := counters.Snapshot().Sub(before)
	if batch.MillerLoops != 1 {
		t.Fatalf("batch verification ran %d Miller loops, want 1", batch.MillerLoops)
	}
	if batch.HashToPoints != 0 {
		t.Fatalf("batch verification hashed %d identities; QID cache not effective", batch.HashToPoints)
	}
	// The linear work is point multiplications: τ for the h·Q_ID terms
	// plus τ subgroup checks.
	if batch.PointMuls < tau || batch.PointMuls > 3*tau {
		t.Fatalf("batch point-mul count %d outside expected [τ, 3τ]", batch.PointMuls)
	}
}

// TestFig5ConstantPairingsMeasured is the Figure 5 claim on live counts:
// one multi-user batch costs the same single verifier-side pairing whether
// it covers 2 users or 20.
func TestFig5ConstantPairingsMeasured(t *testing.T) {
	pp := pairing.InsecureTest256()
	sio, err := ibc.Setup(pp, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	scheme := NewScheme(sio.Params())
	verifier, err := sio.Extract("da:fig5count")
	if err != nil {
		t.Fatal(err)
	}
	mkBatch := func(users int) []BatchItem {
		items := make([]BatchItem, users)
		for i := 0; i < users; i++ {
			uk, err := sio.Extract(fmt.Sprintf("user:f5c-%d", i))
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte(fmt.Sprintf("session %d", i))
			ds, err := scheme.SignDesignated(uk, msg, rand.Reader, verifier.ID)
			if err != nil {
				t.Fatal(err)
			}
			items[i] = NewBatchItem(msg, ds[0])
		}
		return items
	}
	counters := pp.G1().Counters()
	for _, users := range []int{2, 8, 20} {
		items := mkBatch(users)
		before := counters.Snapshot()
		if err := scheme.BatchVerify(items, verifier); err != nil {
			t.Fatal(err)
		}
		delta := counters.Snapshot().Sub(before)
		if delta.MillerLoops != 1 {
			t.Fatalf("users=%d: %d Miller loops, want 1", users, delta.MillerLoops)
		}
	}
}
