package dvs

import (
	"crypto/rand"
	"errors"
	"fmt"
	"testing"

	"seccloud/internal/ibc"
	"seccloud/internal/pairing"
)

// multiUserFixture builds k users with n signatures each, all designated to
// the same cloud server — the §VI multi-user batch scenario.
type multiUserFixture struct {
	scheme *Scheme
	cs     *ibc.PrivateKey
	items  []BatchItem
	msgs   [][]byte
}

func newMultiUserFixture(t *testing.T, users, sigsPerUser int) *multiUserFixture {
	t.Helper()
	sio, err := ibc.Setup(pairing.InsecureTest256(), rand.Reader)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	scheme := NewScheme(sio.Params())
	cs, err := sio.Extract("cs:batch-server")
	if err != nil {
		t.Fatal(err)
	}
	f := &multiUserFixture{scheme: scheme, cs: cs}
	for u := 0; u < users; u++ {
		uk, err := sio.Extract(fmt.Sprintf("user:%d", u))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < sigsPerUser; j++ {
			msg := []byte(fmt.Sprintf("user %d block %d", u, j))
			sigs, err := scheme.SignDesignated(uk, msg, rand.Reader, cs.ID)
			if err != nil {
				t.Fatal(err)
			}
			f.msgs = append(f.msgs, msg)
			f.items = append(f.items, NewBatchItem(msg, sigs[0]))
		}
	}
	return f
}

func TestBatchVerifyAcceptsValid(t *testing.T) {
	for _, shape := range []struct{ users, sigs int }{
		{1, 1}, {1, 5}, {3, 2}, {4, 4},
	} {
		t.Run(fmt.Sprintf("%du_%ds", shape.users, shape.sigs), func(t *testing.T) {
			f := newMultiUserFixture(t, shape.users, shape.sigs)
			if err := f.scheme.BatchVerify(f.items, f.cs); err != nil {
				t.Fatalf("BatchVerify: %v", err)
			}
			if err := f.scheme.BatchVerifyRandomized(f.items, f.cs, rand.Reader); err != nil {
				t.Fatalf("BatchVerifyRandomized: %v", err)
			}
		})
	}
}

func TestBatchVerifyEmptyIsError(t *testing.T) {
	// Regression: an empty batch used to verify successfully, letting an
	// all-shed or all-timed-out multi-tenant flush read as "verified".
	f := newMultiUserFixture(t, 1, 1)
	if err := f.scheme.BatchVerify(nil, f.cs); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("BatchVerify(nil): got %v, want ErrEmptyBatch", err)
	}
	if err := f.scheme.BatchVerify([]BatchItem{}, f.cs); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("BatchVerify(empty): got %v, want ErrEmptyBatch", err)
	}
	if err := f.scheme.BatchVerifyRandomized(nil, f.cs, rand.Reader); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("BatchVerifyRandomized(nil): got %v, want ErrEmptyBatch", err)
	}
}

func TestBatchVerifyDetectsSingleBadItem(t *testing.T) {
	f := newMultiUserFixture(t, 2, 3)
	// Corrupt one message after signing.
	bad := make([]BatchItem, len(f.items))
	copy(bad, f.items)
	tampered := []byte("tampered")
	bad[2] = BatchItem{Msg: &tampered, Sig: bad[2].Sig}
	if err := f.scheme.BatchVerify(bad, f.cs); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("got %v, want ErrVerifyFailed", err)
	}
	if err := f.scheme.BatchVerifyRandomized(bad, f.cs, rand.Reader); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("randomized: got %v, want ErrVerifyFailed", err)
	}
}

func TestBatchVerifyRejectsWrongVerifier(t *testing.T) {
	f := newMultiUserFixture(t, 1, 2)
	sio, err := ibc.Setup(pairing.InsecureTest256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	other, err := sio.Extract("cs:batch-server")
	if err != nil {
		t.Fatal(err)
	}
	// Same identity string but a different system: must fail the pairing.
	if err := f.scheme.BatchVerify(f.items, other); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("got %v, want ErrVerifyFailed", err)
	}
}

func TestBatchVerifyRejectsMisdesignatedItem(t *testing.T) {
	f := newMultiUserFixture(t, 1, 2)
	d := *f.items[0].Sig
	d.VerifierID = "someone-else"
	bad := []BatchItem{{Msg: f.items[0].Msg, Sig: &d}, f.items[1]}
	if err := f.scheme.BatchVerify(bad, f.cs); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("got %v, want ErrVerifyFailed", err)
	}
}

func TestPlainBatchFooledByCancellation(t *testing.T) {
	// Known limitation of the paper's eq. 8 (documented in BatchVerify):
	// multiply one Σ by ε and another by ε⁻¹ — the aggregate Σ_A is
	// unchanged, so the plain batch check passes even though both items
	// are individually invalid. The randomized variant must catch it.
	f := newMultiUserFixture(t, 1, 2)
	g := f.scheme.Params().G1()
	eps := f.scheme.Params().Pairing().Pair(g.Generator(), g.Generator())

	d0 := *f.items[0].Sig
	d0.Sigma = d0.Sigma.Mul(eps)
	d1 := *f.items[1].Sig
	d1.Sigma = d1.Sigma.Mul(eps.Inv())
	forged := []BatchItem{
		{Msg: f.items[0].Msg, Sig: &d0},
		{Msg: f.items[1].Msg, Sig: &d1},
	}

	// Individually invalid.
	if err := f.scheme.Verify(&d0, *f.items[0].Msg, f.cs); err == nil {
		t.Fatal("forged item 0 verified individually")
	}
	// Plain batch is fooled (reproducing the known limitation).
	if err := f.scheme.BatchVerify(forged, f.cs); err != nil {
		t.Fatalf("expected plain batch to be fooled by cancellation, got %v", err)
	}
	// Randomized batch detects it.
	if err := f.scheme.BatchVerifyRandomized(forged, f.cs, rand.Reader); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("randomized batch missed cancellation attack: %v", err)
	}
}

func TestBatchMatchesIndividual(t *testing.T) {
	// Property: a batch passes iff every item passes individually (absent
	// adversarial cancellation). Cross-check on several random batches.
	f := newMultiUserFixture(t, 3, 3)
	for i := range f.items {
		if err := f.scheme.Verify(f.items[i].Sig, *f.items[i].Msg, f.cs); err != nil {
			t.Fatalf("item %d individually invalid: %v", i, err)
		}
	}
	if err := f.scheme.BatchVerify(f.items, f.cs); err != nil {
		t.Fatalf("batch of individually valid items rejected: %v", err)
	}
}

func TestAggregateSigma(t *testing.T) {
	f := newMultiUserFixture(t, 2, 2)
	agg, err := AggregateSigma(f.items)
	if err != nil {
		t.Fatalf("AggregateSigma: %v", err)
	}
	want := f.items[0].Sig.Sigma
	for _, it := range f.items[1:] {
		want = want.Mul(it.Sig.Sigma)
	}
	if !agg.Equal(want) {
		t.Fatal("AggregateSigma mismatch")
	}
	if _, err := AggregateSigma(nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty aggregation: got %v, want ErrEmptyBatch", err)
	}
}

func TestAggregateSigmaRejectsIncompleteItems(t *testing.T) {
	// Regression: AggregateSigma used to dereference items[i].Sig.Sigma
	// unchecked, so a malformed wire item panicked the DA instead of
	// failing the aggregation.
	f := newMultiUserFixture(t, 1, 2)
	cases := []struct {
		name  string
		items []BatchItem
	}{
		{"nil sig first", []BatchItem{{Msg: f.items[0].Msg, Sig: nil}, f.items[1]}},
		{"nil sig later", []BatchItem{f.items[0], {Msg: f.items[1].Msg, Sig: nil}}},
		{"nil sigma", []BatchItem{f.items[0], {Msg: f.items[1].Msg, Sig: &Designated{U: f.items[1].Sig.U}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			agg, err := AggregateSigma(tc.items)
			if !errors.Is(err, ErrVerifyFailed) {
				t.Fatalf("got %v, want wrapped ErrVerifyFailed", err)
			}
			if agg != nil {
				t.Fatal("incomplete aggregation returned a value")
			}
		})
	}
}

func TestBatchVerifyIncompleteItem(t *testing.T) {
	f := newMultiUserFixture(t, 1, 1)
	items := []BatchItem{{Msg: nil, Sig: f.items[0].Sig}}
	if err := f.scheme.BatchVerify(items, f.cs); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("got %v, want ErrVerifyFailed", err)
	}
	if err := f.scheme.BatchVerifyRandomized(f.items, f.cs, nil); err == nil {
		t.Fatal("nil randomness accepted")
	}
}

// TestAggregateRandomizedMatchesSecretCheck verifies the threshold seam:
// the public aggregation (U_A, Σ_A) must satisfy ê(U_A, sk_ver) = Σ_A
// exactly when BatchVerifyRandomized accepts — the combiner reaches the
// same verdict pairing share-wise as the single key does directly.
func TestAggregateRandomizedMatchesSecretCheck(t *testing.T) {
	f := newMultiUserFixture(t, 3, 2)
	sp := f.scheme.Params()
	ua, sigmaA, err := f.scheme.AggregateRandomized(f.items, f.cs.ID, rand.Reader)
	if err != nil {
		t.Fatalf("AggregateRandomized: %v", err)
	}
	if !sp.Pairing().Pair(ua, f.cs.SK).Equal(sigmaA) {
		t.Fatalf("aggregate equation does not hold for valid batch")
	}

	// A tampered item must break the equation (with overwhelming
	// probability over the small exponents).
	f.items[1].Sig.Sigma = f.items[1].Sig.Sigma.Mul(f.items[1].Sig.Sigma)
	ua, sigmaA, err = f.scheme.AggregateRandomized(f.items, f.cs.ID, rand.Reader)
	if err != nil {
		t.Fatalf("AggregateRandomized on tampered batch: %v", err)
	}
	if sp.Pairing().Pair(ua, f.cs.SK).Equal(sigmaA) {
		t.Fatalf("aggregate equation held for tampered batch")
	}
}

// TestVerificationBase verifies the per-item seam against Verify.
func TestVerificationBase(t *testing.T) {
	f := newMultiUserFixture(t, 1, 2)
	sp := f.scheme.Params()
	base, err := f.scheme.VerificationBase(f.items[0].Sig, f.msgs[0], f.cs.ID)
	if err != nil {
		t.Fatalf("VerificationBase: %v", err)
	}
	if !sp.Pairing().Pair(base, f.cs.SK).Equal(f.items[0].Sig.Sigma) {
		t.Fatalf("ê(base, sk) ≠ Σ for a valid signature")
	}
	if _, err := f.scheme.VerificationBase(f.items[0].Sig, f.msgs[0], "someone-else"); err == nil {
		t.Fatalf("base computed for wrong verifier")
	}
	if _, err := f.scheme.VerificationBase(nil, f.msgs[0], f.cs.ID); err == nil {
		t.Fatalf("base computed for nil signature")
	}
}
