// Package dvs implements SecCloud's identity-based signature with
// designated verification (§V-B) and its batch/aggregate verification
// (§VI) — the paper's core cryptographic contribution.
//
// Signing (the underlying Cha–Cheon-style IBS):
//
//	r ←$ Zq*,  U = r·Q_ID,  h = H2(U ‖ m),  V = (r + h)·sk_ID.
//
// Designation: instead of revealing V (which anyone could verify against
// Ppub), the signer publishes Σ = ê(V, Q_ver) for each designated verifier.
// Only a holder of sk_ver can check (paper eq. 5 / 7):
//
//	Σ ?= ê(U + h·Q_ID, sk_ver),
//
// and — crucially for the privacy-cheating discouragement property — any
// designated verifier can *simulate* valid-looking (U, Σ) transcripts with
// its own key, so a transcript convinces nobody else (Jakobsson-style DV).
//
// Batch verification (paper eq. 8–9): for signatures {σ_ij} from users
// {u_i} on messages {m_ij},
//
//	Σ_A = Π Σ_ij,  U_A = Σ (U_ij + h_ij·Q_IDi),  check ê(U_A, sk_ver) = Σ_A,
//
// reducing verification to a constant number of pairings.
package dvs

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"sync"

	"seccloud/internal/curve"
	"seccloud/internal/ibc"
	"seccloud/internal/pairing"
)

// ErrVerifyFailed reports a signature that did not verify.
var ErrVerifyFailed = errors.New("dvs: signature verification failed")

// ErrEmptyBatch reports a batch operation invoked with no items. An empty
// batch carries no evidence, so treating it as verified would let an
// all-shed or all-timed-out flush read as success; callers that consider
// emptiness legal must check before verifying.
var ErrEmptyBatch = errors.New("dvs: empty batch")

// Signature is the raw identity-based signature (U, V). V must be treated
// as secret when designated verification is in use: publishing V makes the
// signature publicly verifiable and voids the privacy property.
type Signature struct {
	U *curve.Point
	V *curve.Point
}

// Designated is a designated-verifier signature (U, Σ) bound to one
// verifier identity. It is what actually travels to the cloud.
type Designated struct {
	SignerID   string
	VerifierID string
	U          *curve.Point
	Sigma      *pairing.GT

	// SubgroupChecked records that U already passed a G1 membership
	// check (an order-q scalar multiplication), typically at wire
	// decode time. Verification then skips the redundant re-check.
	// Set it only on points that actually passed Group.InSubgroup.
	SubgroupChecked bool
}

// DefaultVerifierCacheSize bounds the per-verifier precompute cache. A
// single-DA deployment uses one entry; a t-of-n threshold agency uses one
// per share key, so the default leaves room for realistic quorum sizes
// while keeping the worst case (a churn of short-lived verifier keys) from
// growing the cache without bound.
const DefaultVerifierCacheSize = 16

// Scheme binds the signature algorithms to a parameter set.
// Safe for concurrent use.
type Scheme struct {
	sp *ibc.SystemParams

	// The verifier cache memoizes the fixed-argument Miller-loop state for
	// each verifier secret key: every designated verification pairs against
	// the same sk_ver (eq. 5/7), so the expensive accumulator arithmetic is
	// done once per verifier and replayed per signature. The cached
	// coefficients are key-dependent and live only inside the verifying
	// process, same as the key itself. Bounded LRU: least-recently used
	// entries are evicted once cacheCap is exceeded.
	mu       sync.Mutex
	cacheCap int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used; values are *verifierPC
}

// verifierPC pins the key the precomputation was built from so a re-issued
// key for the same identity invalidates the cache instead of mis-verifying.
type verifierPC struct {
	id string
	sk *curve.Point
	pc *pairing.Precomp
}

// lookupVerifier returns the cached precomputation for (id, sk), promoting
// the entry, or nil on miss. A stale entry (same identity, different key —
// a re-issued verifier key) is dropped rather than returned.
func (s *Scheme) lookupVerifier(id string, sk *curve.Point) *pairing.Precomp {
	g := s.sp.G1()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[id]; ok {
		e := el.Value.(*verifierPC)
		if g.Equal(e.sk, sk) {
			s.order.MoveToFront(el)
			return e.pc
		}
		s.order.Remove(el)
		delete(s.entries, id)
	}
	return nil
}

// storeVerifier inserts a precomputation, evicting from the LRU tail to
// stay within cacheCap. The expensive Precompute happens outside the lock
// in the callers; a racing insert for the same identity just overwrites.
func (s *Scheme) storeVerifier(e *verifierPC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[e.id]; ok {
		el.Value = e
		s.order.MoveToFront(el)
		return
	}
	s.entries[e.id] = s.order.PushFront(e)
	for s.order.Len() > s.cacheCap {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.entries, back.Value.(*verifierPC).id)
	}
}

// pairWithVerifier computes ê(q, sk_ver) through the per-verifier
// precomputation cache, building the entry on first use.
func (s *Scheme) pairWithVerifier(q *curve.Point, verifierSK *ibc.PrivateKey) *pairing.GT {
	g := s.sp.G1()
	if pc := s.lookupVerifier(verifierSK.ID, verifierSK.SK); pc != nil {
		g.Counters().AddPrecompHit()
		return pc.Pair(q)
	}
	g.Counters().AddPrecompMiss()
	pc := s.sp.Pairing().Precompute(verifierSK.SK)
	s.storeVerifier(&verifierPC{id: verifierSK.ID, sk: g.Copy(verifierSK.SK), pc: pc})
	return pc.Pair(q)
}

// PrecomputeVerifier warms the pairing cache for a verifier key ahead of
// the first verification, moving the one-time Miller-loop setup off the
// audit hot path.
func (s *Scheme) PrecomputeVerifier(verifierSK *ibc.PrivateKey) {
	if verifierSK == nil || verifierSK.SK == nil {
		return
	}
	g := s.sp.G1()
	if s.lookupVerifier(verifierSK.ID, verifierSK.SK) != nil {
		return
	}
	g.Counters().AddPrecompMiss()
	s.storeVerifier(&verifierPC{
		id: verifierSK.ID,
		sk: g.Copy(verifierSK.SK),
		pc: s.sp.Pairing().Precompute(verifierSK.SK),
	})
}

// EvictVerifier drops the cached precomputation for a verifier identity,
// e.g. after its key is retired. Unknown identities are a no-op.
func (s *Scheme) EvictVerifier(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[id]; ok {
		s.order.Remove(el)
		delete(s.entries, id)
	}
}

// VerifierCacheLen reports how many verifier precomputations are cached.
func (s *Scheme) VerifierCacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// WithVerifierCacheCap resizes the verifier precompute cache (minimum 1),
// evicting LRU entries if the new capacity is smaller. Returns s.
func (s *Scheme) WithVerifierCacheCap(n int) *Scheme {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheCap = n
	for s.order.Len() > s.cacheCap {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.entries, back.Value.(*verifierPC).id)
	}
	return s
}

// NewScheme returns a Scheme over the given system parameters.
func NewScheme(sp *ibc.SystemParams) *Scheme {
	return &Scheme{
		sp:       sp,
		cacheCap: DefaultVerifierCacheSize,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Params returns the system parameters the scheme operates over.
func (s *Scheme) Params() *ibc.SystemParams { return s.sp }

// Sign produces the raw signature (U, V) on msg under sk.
func (s *Scheme) Sign(sk *ibc.PrivateKey, msg []byte, random io.Reader) (*Signature, error) {
	g := s.sp.G1()
	r, err := g.Scalars().Rand(random)
	if err != nil {
		return nil, fmt.Errorf("dvs: sampling signature nonce: %w", err)
	}
	qid := s.sp.QID(sk.ID)
	u := g.ScalarMult(qid, r)
	h := s.sp.H2(g.MarshalPoint(u), msg)
	rh := g.Scalars().Add(r, h)
	v := g.ScalarMult(sk.SK, rh)
	return &Signature{U: u, V: v}, nil
}

// PublicVerify checks the raw signature against the signer's identity and
// the master public key: ê(V, P) ?= ê(U + h·Q_ID, Ppub). This is the
// conventional (non-designated) verification path; it costs two pairings.
func (s *Scheme) PublicVerify(signerID string, msg []byte, sig *Signature) error {
	g := s.sp.G1()
	if sig == nil || sig.U == nil || sig.V == nil {
		return fmt.Errorf("dvs: incomplete signature: %w", ErrVerifyFailed)
	}
	if !g.InSubgroup(sig.U) || !g.InSubgroup(sig.V) {
		return fmt.Errorf("dvs: signature outside G1: %w", ErrVerifyFailed)
	}
	h := s.sp.H2(g.MarshalPoint(sig.U), msg)
	base := g.Add(sig.U, g.ScalarMult(s.sp.QID(signerID), h))
	lhs := s.sp.PairWithGenerator(sig.V)
	rhs := s.sp.PairWithMasterKey(base)
	if !lhs.Equal(rhs) {
		return ErrVerifyFailed
	}
	return nil
}

// Designate transforms a raw signature into its designated-verifier form
// for verifierID by computing Σ = ê(V, Q_verifier).
func (s *Scheme) Designate(signerID string, sig *Signature, verifierID string) *Designated {
	qv := s.sp.QID(verifierID)
	return &Designated{
		SignerID:   signerID,
		VerifierID: verifierID,
		U:          s.sp.G1().Copy(sig.U),
		Sigma:      s.sp.Pairing().Pair(sig.V, qv),
	}
}

// SignDesignated signs msg and designates it to each verifier in one call,
// returning the designated signatures in verifier order. This is the
// paper's flow where the user produces (U_i, Σ_i, Σ'_i) for CS and DA.
func (s *Scheme) SignDesignated(
	sk *ibc.PrivateKey, msg []byte, random io.Reader, verifierIDs ...string,
) ([]*Designated, error) {
	sig, err := s.Sign(sk, msg, random)
	if err != nil {
		return nil, err
	}
	out := make([]*Designated, 0, len(verifierIDs))
	for _, vid := range verifierIDs {
		out = append(out, s.Designate(sk.ID, sig, vid))
	}
	return out, nil
}

// Verify checks a designated signature with the verifier's private key
// (paper eq. 5 / 7): Σ ?= ê(U + H2(U‖m)·Q_ID, sk_ver). One pairing.
func (s *Scheme) Verify(d *Designated, msg []byte, verifierSK *ibc.PrivateKey) error {
	if d == nil || d.U == nil || d.Sigma == nil {
		return fmt.Errorf("dvs: incomplete designated signature: %w", ErrVerifyFailed)
	}
	if verifierSK.ID != d.VerifierID {
		return fmt.Errorf("dvs: signature designated to %q, verifier is %q: %w",
			d.VerifierID, verifierSK.ID, ErrVerifyFailed)
	}
	g := s.sp.G1()
	if !d.SubgroupChecked && !g.InSubgroup(d.U) {
		return fmt.Errorf("dvs: U outside G1: %w", ErrVerifyFailed)
	}
	h := s.sp.H2(g.MarshalPoint(d.U), msg)
	base := g.Add(d.U, g.ScalarMult(s.sp.QID(d.SignerID), h))
	want := s.pairWithVerifier(base, verifierSK)
	if !want.Equal(d.Sigma) {
		return ErrVerifyFailed
	}
	return nil
}

// Simulate lets a designated verifier forge a transcript that verifies
// under its own key and is distributed identically to a real signature.
// This realizes the privacy property of Definition 2: because the verifier
// can produce such transcripts itself, a (possibly compromised) cloud
// server cannot use stored signatures to convince third parties — e.g. a
// buyer of illegally sold data — of their authenticity.
func (s *Scheme) Simulate(
	signerID string, msg []byte, verifierSK *ibc.PrivateKey, random io.Reader,
) (*Designated, error) {
	g := s.sp.G1()
	// U' = r'·Q_ID for random r' matches the real distribution of U.
	r, err := g.Scalars().Rand(random)
	if err != nil {
		return nil, fmt.Errorf("dvs: sampling simulation nonce: %w", err)
	}
	qid := s.sp.QID(signerID)
	u := g.ScalarMult(qid, r)
	h := s.sp.H2(g.MarshalPoint(u), msg)
	base := g.Add(u, g.ScalarMult(qid, h))
	return &Designated{
		SignerID:   signerID,
		VerifierID: verifierSK.ID,
		U:          u,
		Sigma:      s.pairWithVerifier(base, verifierSK),
	}, nil
}
