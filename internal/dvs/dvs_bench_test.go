package dvs

import (
	"crypto/rand"
	"fmt"
	"testing"

	"seccloud/internal/ibc"
	"seccloud/internal/pairing"
)

// benchScheme sets up a scheme with one signer and one verifier.
func benchScheme(b *testing.B) (*Scheme, *ibc.PrivateKey, *ibc.PrivateKey) {
	b.Helper()
	sio, err := ibc.Setup(pairing.InsecureTest256(), rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	signer, err := sio.Extract("user:bench")
	if err != nil {
		b.Fatal(err)
	}
	verifier, err := sio.Extract("da:bench")
	if err != nil {
		b.Fatal(err)
	}
	return NewScheme(sio.Params()), signer, verifier
}

func BenchmarkSign(b *testing.B) {
	scheme, signer, _ := benchScheme(b)
	msg := []byte("benchmark message")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.Sign(signer, msg, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignDesignated(b *testing.B) {
	scheme, signer, verifier := benchScheme(b)
	msg := []byte("benchmark message")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.SignDesignated(signer, msg, rand.Reader, verifier.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyDesignated(b *testing.B) {
	scheme, signer, verifier := benchScheme(b)
	msg := []byte("benchmark message")
	ds, err := scheme.SignDesignated(signer, msg, rand.Reader, verifier.ID)
	if err != nil {
		b.Fatal(err)
	}

	// cold replicates the pre-cache verification path: a full Miller loop
	// (accumulator arithmetic included) per signature. precomputed is the
	// production path through the per-verifier pairing cache.
	b.Run("cold", func(b *testing.B) {
		sp := scheme.Params()
		g := sp.G1()
		for i := 0; i < b.N; i++ {
			if !g.InSubgroup(ds[0].U) {
				b.Fatal("U outside G1")
			}
			h := sp.H2(g.MarshalPoint(ds[0].U), msg)
			base := g.Add(ds[0].U, g.ScalarMult(sp.QID(ds[0].SignerID), h))
			if !sp.Pairing().Pair(base, verifier.SK).Equal(ds[0].Sigma) {
				b.Fatal("cold verify failed")
			}
		}
	})
	b.Run("precomputed", func(b *testing.B) {
		scheme.PrecomputeVerifier(verifier)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := scheme.Verify(ds[0], msg, verifier); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPublicVerify(b *testing.B) {
	scheme, signer, _ := benchScheme(b)
	msg := []byte("benchmark message")
	sig, err := scheme.Sign(signer, msg, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := scheme.PublicVerify(signer.ID, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchVerify(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		for _, randomized := range []bool{false, true} {
			name := fmt.Sprintf("n=%d/randomized=%v", n, randomized)
			b.Run(name, func(b *testing.B) {
				scheme, signer, verifier := benchScheme(b)
				items := make([]BatchItem, n)
				for i := 0; i < n; i++ {
					msg := []byte(fmt.Sprintf("batch message %d", i))
					ds, err := scheme.SignDesignated(signer, msg, rand.Reader, verifier.ID)
					if err != nil {
						b.Fatal(err)
					}
					items[i] = NewBatchItem(msg, ds[0])
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					if randomized {
						err = scheme.BatchVerifyRandomized(items, verifier, rand.Reader)
					} else {
						err = scheme.BatchVerify(items, verifier)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkSimulate(b *testing.B) {
	scheme, signer, verifier := benchScheme(b)
	msg := []byte("simulated message")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheme.Simulate(signer.ID, msg, verifier, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}
