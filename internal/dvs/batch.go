package dvs

import (
	"fmt"
	"io"
	"math/big"

	"seccloud/internal/curve"
	"seccloud/internal/ibc"
	"seccloud/internal/pairing"
)

// BatchItem is one (message, designated signature) pair inside a batch.
// Items in one batch may come from different signers, mirroring §VI where
// the cloud concurrently handles requests from multiple cloud users.
type BatchItem struct {
	Msg *[]byte // message bytes; pointer to avoid copying large blocks
	Sig *Designated
}

// NewBatchItem builds a BatchItem, copying nothing.
func NewBatchItem(msg []byte, sig *Designated) BatchItem {
	return BatchItem{Msg: &msg, Sig: sig}
}

// BatchVerify implements the paper's aggregate check (eq. 8–9):
//
//	Σ_A = Π Σ_ij,  U_A = Σ (U_ij + h_ij·Q_IDi),  ê(U_A, sk_ver) ?= Σ_A.
//
// Cost is a single pairing plus one point multiplication per item, versus
// one pairing per item for individual verification — the source of the
// paper's Figure 5 / Table II speedup.
//
// Caveat reproduced from the paper: the plain aggregate check accepts any
// set of signatures whose *errors cancel*. A malicious signer who controls
// several items in the batch can exploit this; use BatchVerifyRandomized
// when items come from mutually untrusted sources.
func (s *Scheme) BatchVerify(items []BatchItem, verifierSK *ibc.PrivateKey) error {
	return s.batchVerify(items, verifierSK, nil)
}

// batchExponentBits is λ for the small-exponent test. 128-bit exponents
// bound error cancellation by 2⁻¹²⁸ while costing a fraction of the
// full-width ScalarMult/Exp a group-order-sized δ would need — the
// classic small-exponent batch-verification trade (Bellare–Garay–Rabin).
const batchExponentBits = 128

// BatchVerifyRandomized is the small-exponent variant: each item is raised
// to a fresh random exponent δ_ij before aggregation, making error
// cancellation infeasible (probability ≤ 1/2^λ for λ-bit exponents; λ is
// batchExponentBits). This is this repository's hardening extension over
// the paper's eq. 8.
func (s *Scheme) BatchVerifyRandomized(
	items []BatchItem, verifierSK *ibc.PrivateKey, random io.Reader,
) error {
	if random == nil {
		return fmt.Errorf("dvs: randomized batch verify requires a randomness source")
	}
	if len(items) == 0 {
		return ErrEmptyBatch
	}
	deltas, err := s.sampleDeltas(len(items), random)
	if err != nil {
		return err
	}
	if err := s.batchMembership(items, random); err != nil {
		return err
	}
	return s.batchVerify(items, verifierSK, deltas)
}

// sampleDeltas draws the per-item small exponents for the randomized
// aggregate check.
func (s *Scheme) sampleDeltas(n int, random io.Reader) ([]*big.Int, error) {
	// λ never exceeds the scalar width: a δ wider than q costs extra
	// ladder steps without adding security beyond the group order.
	bits := batchExponentBits
	if qb := s.sp.G1().Q().BitLen() - 1; qb < bits {
		bits = qb
	}
	deltas := make([]*big.Int, n)
	buf := make([]byte, (bits+7)/8)
	shift := uint(len(buf)*8 - bits)
	for i := range deltas {
		if _, err := io.ReadFull(random, buf); err != nil {
			return nil, fmt.Errorf("dvs: sampling batch exponent: %w", err)
		}
		d := new(big.Int).SetBytes(buf)
		d.Rsh(d, shift)
		if d.Sign() == 0 {
			// δ = 0 would drop the item from both sides; any nonzero
			// value keeps the bound (probability of hitting 0 is 2⁻λ).
			d.SetInt64(1)
		}
		deltas[i] = d
	}
	return deltas, nil
}

// AggregateRandomized computes the public half of the randomized aggregate
// check: the batch-wide base U_A = Σ δᵢ·(Uᵢ + hᵢ·Q_IDᵢ) and target
// Σ_A = Π Σᵢ^δᵢ, after running the batched membership check. No secret is
// involved — a threshold combiner hands U_A to the share-holders and tests
// the Lagrange-combined partials against Σ_A, reaching exactly the verdict
// BatchVerifyRandomized reaches with sk_ver in hand.
func (s *Scheme) AggregateRandomized(
	items []BatchItem, verifierID string, random io.Reader,
) (*curve.Point, *pairing.GT, error) {
	if random == nil {
		return nil, nil, fmt.Errorf("dvs: randomized aggregation requires a randomness source")
	}
	if len(items) == 0 {
		return nil, nil, ErrEmptyBatch
	}
	deltas, err := s.sampleDeltas(len(items), random)
	if err != nil {
		return nil, nil, err
	}
	if err := s.batchMembership(items, random); err != nil {
		return nil, nil, err
	}
	return s.aggregate(items, verifierID, deltas)
}

// VerificationBase computes the eq. 5/7 base U + H2(U‖m)·Q_ID for one
// designated signature after strict per-item validation (designation
// match, U ∈ G1, Σ ∈ GT). Pairing the result with sk_ver — directly or
// share-wise through a threshold quorum — must equal d.Sigma for the
// signature to verify.
func (s *Scheme) VerificationBase(d *Designated, msg []byte, verifierID string) (*curve.Point, error) {
	if d == nil || d.U == nil || d.Sigma == nil {
		return nil, fmt.Errorf("dvs: incomplete designated signature: %w", ErrVerifyFailed)
	}
	if d.VerifierID != verifierID {
		return nil, fmt.Errorf("dvs: signature designated to %q, verifier is %q: %w",
			d.VerifierID, verifierID, ErrVerifyFailed)
	}
	g := s.sp.G1()
	if !d.SubgroupChecked && !g.InSubgroup(d.U) {
		return nil, fmt.Errorf("dvs: U outside G1: %w", ErrVerifyFailed)
	}
	if !d.Sigma.InSubgroup() {
		return nil, fmt.Errorf("dvs: Σ outside GT: %w", ErrVerifyFailed)
	}
	h := s.sp.H2(g.MarshalPoint(d.U), msg)
	return g.Add(d.U, g.ScalarMult(s.sp.QID(d.SignerID), h)), nil
}

// batchMembership checks G1 membership for every item whose U has not
// already been validated, as one randomized linear combination: T =
// q·(Σ γᵢUᵢ) with fresh 64-bit coefficients γᵢ must be the identity.
// Cost is one shared multi-scalar ladder plus a single order-q
// multiplication, versus one order-q multiplication per point.
//
// Soundness: a component of prime order ℓ outside the q-subgroup
// survives into the sum unless γᵢ ≡ 0 (mod ℓ) — probability ≤ 1/ℓ per
// check, ≤ 2⁻⁶⁴ for large ℓ. A surviving component fails this check (or,
// if annihilated here, fails the independently-randomized aggregate
// equation unless δᵢ also kills it). Both outcomes depend only on the
// verifier's own randomness, never on the secret key, so accept/reject
// cannot be used as a key-bit oracle; and an annihilated component
// leaves an equation identical to the one over the valid order-q parts.
// Callers that need per-item blame fall back to Verify, whose per-point
// membership check is strict.
func (s *Scheme) batchMembership(items []BatchItem, random io.Reader) error {
	g := s.sp.G1()
	pts := make([]*curve.Point, 0, len(items))
	ks := make([]*big.Int, 0, len(items))
	var buf [8]byte
	for _, it := range items {
		d := it.Sig
		if d == nil || d.U == nil || d.SubgroupChecked {
			continue // nil handled by batchVerify's item validation
		}
		if _, err := io.ReadFull(random, buf[:]); err != nil {
			return fmt.Errorf("dvs: sampling membership coefficient: %w", err)
		}
		k := new(big.Int).SetBytes(buf[:])
		if k.Sign() == 0 {
			k.SetInt64(1)
		}
		pts = append(pts, d.U)
		ks = append(ks, k)
	}
	if len(pts) == 0 {
		return nil
	}
	sum, err := g.SumScalarMult(pts, ks)
	if err != nil {
		return fmt.Errorf("dvs: batch membership: %w", err)
	}
	if !g.ScalarMult(sum, g.Q()).Inf {
		return fmt.Errorf("dvs: batch contains U outside G1: %w", ErrVerifyFailed)
	}
	return nil
}

// batchVerify evaluates the aggregate equation with batch-wide shared
// ladders rather than per-item multiplications:
//
//   - the Q_ID contribution is grouped per signer — Σᵢ∈signer δᵢhᵢ mod q
//     is accumulated in Zq and Q_ID enters the point sum once per signer,
//     not once per item (cross-user batches repeat signers heavily);
//   - U_A is one interleaved multi-scalar multiplication over every Uᵢ
//     and every grouped Q_ID, sharing a single doubling ladder;
//   - Σ_A uses one shared squaring ladder (GT multi-exp) for the
//     randomized path.
func (s *Scheme) batchVerify(items []BatchItem, verifierSK *ibc.PrivateKey, deltas []*big.Int) error {
	ua, sigmaA, err := s.aggregate(items, verifierSK.ID, deltas)
	if err != nil {
		return err
	}
	got := s.pairWithVerifier(ua, verifierSK)
	if !got.Equal(sigmaA) {
		return ErrVerifyFailed
	}
	return nil
}

// aggregate builds (U_A, Σ_A) for the aggregate equation; see batchVerify
// for the ladder-sharing layout. deltas == nil selects the plain eq. 8
// aggregate with strict per-item subgroup checks.
func (s *Scheme) aggregate(items []BatchItem, verifierID string, deltas []*big.Int) (*curve.Point, *pairing.GT, error) {
	if len(items) == 0 {
		return nil, nil, ErrEmptyBatch
	}
	g := s.sp.G1()
	q := g.Q()
	one := big.NewInt(1)

	pts := make([]*curve.Point, 0, len(items)+8)
	ks := make([]*big.Int, 0, len(items)+8)
	signerK := make(map[string]*big.Int, 8)
	signerOrder := make([]string, 0, 8)
	var sigmaA *pairing.GT
	sigs := make([]*pairing.GT, 0, len(items))
	for i, it := range items {
		d := it.Sig
		if d == nil || d.U == nil || d.Sigma == nil || it.Msg == nil {
			return nil, nil, fmt.Errorf("dvs: batch item %d incomplete: %w", i, ErrVerifyFailed)
		}
		if d.VerifierID != verifierID {
			return nil, nil, fmt.Errorf("dvs: batch item %d designated to %q, verifier is %q: %w",
				i, d.VerifierID, verifierID, ErrVerifyFailed)
		}
		// The randomized entry point has already run the batched
		// membership check, and its per-item δ randomization keeps a Σ
		// outside the target subgroup from cancelling across items. The
		// plain aggregate has neither shield, so it keeps strict per-item
		// checks for any component not validated upstream.
		if deltas == nil {
			if !d.SubgroupChecked && !g.InSubgroup(d.U) {
				return nil, nil, fmt.Errorf("dvs: batch item %d has U outside G1: %w", i, ErrVerifyFailed)
			}
			if !d.Sigma.InSubgroup() {
				return nil, nil, fmt.Errorf("dvs: batch item %d has Σ outside GT: %w", i, ErrVerifyFailed)
			}
		}
		h := s.sp.H2(g.MarshalPoint(d.U), *it.Msg)
		ku := one
		if deltas != nil {
			ku = deltas[i]
			h = h.Mul(h, deltas[i]).Mod(h, q)
			sigs = append(sigs, d.Sigma)
		} else {
			if sigmaA == nil {
				sigmaA = d.Sigma
			} else {
				sigmaA = sigmaA.Mul(d.Sigma)
			}
		}
		pts = append(pts, d.U)
		ks = append(ks, ku)
		if acc, ok := signerK[d.SignerID]; ok {
			acc.Add(acc, h).Mod(acc, q)
		} else {
			signerK[d.SignerID] = h
			signerOrder = append(signerOrder, d.SignerID)
		}
	}
	for _, id := range signerOrder {
		pts = append(pts, s.sp.QID(id))
		ks = append(ks, signerK[id])
	}
	ua, err := g.SumScalarMult(pts, ks)
	if err != nil {
		return nil, nil, fmt.Errorf("dvs: aggregating batch: %w", err)
	}
	if deltas != nil {
		sigmaA, err = s.sp.Pairing().MultiExp(sigs, deltas)
		if err != nil {
			return nil, nil, fmt.Errorf("dvs: aggregating batch: %w", err)
		}
	}
	return ua, sigmaA, nil
}

// AggregateSigma multiplies the Σ components of a batch into the single
// GT element Σ_A that a prover transmits (the "signature combination can
// be performed incrementally" remark in §VI).
func AggregateSigma(items []BatchItem) (*pairing.GT, error) {
	if len(items) == 0 {
		return nil, ErrEmptyBatch
	}
	var acc *pairing.GT
	for i, it := range items {
		if it.Sig == nil || it.Sig.Sigma == nil {
			return nil, fmt.Errorf("dvs: aggregate item %d incomplete: %w", i, ErrVerifyFailed)
		}
		if acc == nil {
			acc = it.Sig.Sigma
		} else {
			acc = acc.Mul(it.Sig.Sigma)
		}
	}
	return acc, nil
}
