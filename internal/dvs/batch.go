package dvs

import (
	"fmt"
	"io"
	"math/big"

	"seccloud/internal/ibc"
	"seccloud/internal/pairing"
)

// BatchItem is one (message, designated signature) pair inside a batch.
// Items in one batch may come from different signers, mirroring §VI where
// the cloud concurrently handles requests from multiple cloud users.
type BatchItem struct {
	Msg *[]byte // message bytes; pointer to avoid copying large blocks
	Sig *Designated
}

// NewBatchItem builds a BatchItem, copying nothing.
func NewBatchItem(msg []byte, sig *Designated) BatchItem {
	return BatchItem{Msg: &msg, Sig: sig}
}

// BatchVerify implements the paper's aggregate check (eq. 8–9):
//
//	Σ_A = Π Σ_ij,  U_A = Σ (U_ij + h_ij·Q_IDi),  ê(U_A, sk_ver) ?= Σ_A.
//
// Cost is a single pairing plus one point multiplication per item, versus
// one pairing per item for individual verification — the source of the
// paper's Figure 5 / Table II speedup.
//
// Caveat reproduced from the paper: the plain aggregate check accepts any
// set of signatures whose *errors cancel*. A malicious signer who controls
// several items in the batch can exploit this; use BatchVerifyRandomized
// when items come from mutually untrusted sources.
func (s *Scheme) BatchVerify(items []BatchItem, verifierSK *ibc.PrivateKey) error {
	return s.batchVerify(items, verifierSK, nil)
}

// BatchVerifyRandomized is the small-exponent variant: each item is raised
// to a fresh random exponent δ_ij before aggregation, making error
// cancellation infeasible (probability ≤ 1/2^λ for λ-bit exponents). This
// is this repository's hardening extension over the paper's eq. 8.
func (s *Scheme) BatchVerifyRandomized(
	items []BatchItem, verifierSK *ibc.PrivateKey, random io.Reader,
) error {
	if random == nil {
		return fmt.Errorf("dvs: randomized batch verify requires a randomness source")
	}
	deltas := make([]*big.Int, len(items))
	for i := range items {
		d, err := s.sp.G1().Scalars().Rand(random)
		if err != nil {
			return fmt.Errorf("dvs: sampling batch exponent: %w", err)
		}
		deltas[i] = d
	}
	return s.batchVerify(items, verifierSK, deltas)
}

func (s *Scheme) batchVerify(items []BatchItem, verifierSK *ibc.PrivateKey, deltas []*big.Int) error {
	if len(items) == 0 {
		return nil
	}
	g := s.sp.G1()
	ua := g.Infinity()
	var sigmaA *pairing.GT
	for i, it := range items {
		d := it.Sig
		if d == nil || d.U == nil || d.Sigma == nil || it.Msg == nil {
			return fmt.Errorf("dvs: batch item %d incomplete: %w", i, ErrVerifyFailed)
		}
		if d.VerifierID != verifierSK.ID {
			return fmt.Errorf("dvs: batch item %d designated to %q, verifier is %q: %w",
				i, d.VerifierID, verifierSK.ID, ErrVerifyFailed)
		}
		if !g.InSubgroup(d.U) {
			return fmt.Errorf("dvs: batch item %d has U outside G1: %w", i, ErrVerifyFailed)
		}
		h := s.sp.H2(g.MarshalPoint(d.U), *it.Msg)
		term := g.Add(d.U, g.ScalarMult(s.sp.QID(d.SignerID), h))
		sig := d.Sigma
		if deltas != nil {
			term = g.ScalarMult(term, deltas[i])
			sig = sig.Exp(deltas[i])
		}
		ua = g.Add(ua, term)
		if sigmaA == nil {
			sigmaA = sig
		} else {
			sigmaA = sigmaA.Mul(sig)
		}
	}
	got := s.pairWithVerifier(ua, verifierSK)
	if !got.Equal(sigmaA) {
		return ErrVerifyFailed
	}
	return nil
}

// AggregateSigma multiplies the Σ components of a batch into the single
// GT element Σ_A that a prover transmits (the "signature combination can
// be performed incrementally" remark in §VI).
func AggregateSigma(items []BatchItem) (*pairing.GT, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("dvs: empty aggregation")
	}
	acc := items[0].Sig.Sigma
	for _, it := range items[1:] {
		acc = acc.Mul(it.Sig.Sigma)
	}
	return acc, nil
}
