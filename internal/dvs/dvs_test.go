package dvs

import (
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"

	"seccloud/internal/ibc"
	"seccloud/internal/pairing"
)

// fixture bundles a complete small system: one SIO, a user, a cloud server
// and a designated agency, mirroring the paper's cast.
type fixture struct {
	scheme *Scheme
	user   *ibc.PrivateKey
	cs     *ibc.PrivateKey
	da     *ibc.PrivateKey
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sio, err := ibc.Setup(pairing.InsecureTest256(), rand.Reader)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	extract := func(id string) *ibc.PrivateKey {
		k, err := sio.Extract(id)
		if err != nil {
			t.Fatalf("Extract(%q): %v", id, err)
		}
		return k
	}
	return &fixture{
		scheme: NewScheme(sio.Params()),
		user:   extract("user:alice"),
		cs:     extract("cs:server-1"),
		da:     extract("da:auditor"),
	}
}

func TestSignPublicVerify(t *testing.T) {
	f := newFixture(t)
	msg := []byte("block #1 contents")
	sig, err := f.scheme.Sign(f.user, msg, rand.Reader)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := f.scheme.PublicVerify(f.user.ID, msg, sig); err != nil {
		t.Fatalf("PublicVerify: %v", err)
	}
}

func TestPublicVerifyRejections(t *testing.T) {
	f := newFixture(t)
	msg := []byte("data")
	sig, err := f.scheme.Sign(f.user, msg, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("wrong message", func(t *testing.T) {
		if err := f.scheme.PublicVerify(f.user.ID, []byte("other"), sig); !errors.Is(err, ErrVerifyFailed) {
			t.Fatalf("got %v, want ErrVerifyFailed", err)
		}
	})
	t.Run("wrong signer", func(t *testing.T) {
		if err := f.scheme.PublicVerify("user:mallory", msg, sig); !errors.Is(err, ErrVerifyFailed) {
			t.Fatalf("got %v, want ErrVerifyFailed", err)
		}
	})
	t.Run("tampered U", func(t *testing.T) {
		g := f.scheme.Params().G1()
		bad := &Signature{U: g.Add(sig.U, g.Generator()), V: sig.V}
		if err := f.scheme.PublicVerify(f.user.ID, msg, bad); !errors.Is(err, ErrVerifyFailed) {
			t.Fatalf("got %v, want ErrVerifyFailed", err)
		}
	})
	t.Run("nil signature", func(t *testing.T) {
		if err := f.scheme.PublicVerify(f.user.ID, msg, nil); !errors.Is(err, ErrVerifyFailed) {
			t.Fatalf("got %v, want ErrVerifyFailed", err)
		}
	})
}

func TestDesignatedVerify(t *testing.T) {
	f := newFixture(t)
	msg := []byte("outsourced block")
	sigs, err := f.scheme.SignDesignated(f.user, msg, rand.Reader, f.cs.ID, f.da.ID)
	if err != nil {
		t.Fatalf("SignDesignated: %v", err)
	}
	if len(sigs) != 2 {
		t.Fatalf("got %d designated signatures, want 2", len(sigs))
	}
	// Eq. 5: the cloud server verifies with its own key.
	if err := f.scheme.Verify(sigs[0], msg, f.cs); err != nil {
		t.Fatalf("CS verify: %v", err)
	}
	// Eq. 7: the DA verifies its copy.
	if err := f.scheme.Verify(sigs[1], msg, f.da); err != nil {
		t.Fatalf("DA verify: %v", err)
	}
}

func TestDesignatedVerifyRejections(t *testing.T) {
	f := newFixture(t)
	msg := []byte("outsourced block")
	sigs, err := f.scheme.SignDesignated(f.user, msg, rand.Reader, f.cs.ID)
	if err != nil {
		t.Fatal(err)
	}
	d := sigs[0]

	t.Run("wrong verifier key", func(t *testing.T) {
		// The DA cannot verify a signature designated to the CS.
		if err := f.scheme.Verify(d, msg, f.da); !errors.Is(err, ErrVerifyFailed) {
			t.Fatalf("got %v, want ErrVerifyFailed", err)
		}
	})
	t.Run("wrong message", func(t *testing.T) {
		if err := f.scheme.Verify(d, []byte("swap"), f.cs); !errors.Is(err, ErrVerifyFailed) {
			t.Fatalf("got %v, want ErrVerifyFailed", err)
		}
	})
	t.Run("claimed different signer", func(t *testing.T) {
		forged := &Designated{
			SignerID:   "user:mallory",
			VerifierID: d.VerifierID,
			U:          d.U,
			Sigma:      d.Sigma,
		}
		if err := f.scheme.Verify(forged, msg, f.cs); !errors.Is(err, ErrVerifyFailed) {
			t.Fatalf("got %v, want ErrVerifyFailed", err)
		}
	})
	t.Run("tampered sigma", func(t *testing.T) {
		forged := &Designated{
			SignerID:   d.SignerID,
			VerifierID: d.VerifierID,
			U:          d.U,
			Sigma:      d.Sigma.Mul(d.Sigma),
		}
		if err := f.scheme.Verify(forged, msg, f.cs); !errors.Is(err, ErrVerifyFailed) {
			t.Fatalf("got %v, want ErrVerifyFailed", err)
		}
	})
}

func TestSimulatedTranscriptVerifies(t *testing.T) {
	// The designated verifier can forge transcripts that pass its own
	// verification — the heart of the privacy-cheating discouragement
	// property: a transcript proves nothing to third parties.
	f := newFixture(t)
	msg := []byte("allegedly signed by alice")
	sim, err := f.scheme.Simulate(f.user.ID, msg, f.cs, rand.Reader)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if err := f.scheme.Verify(sim, msg, f.cs); err != nil {
		t.Fatalf("simulated transcript rejected: %v", err)
	}
	// And it is bound to the simulating verifier: the DA must reject it.
	if err := f.scheme.Verify(sim, msg, f.da); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("simulated transcript verified by another party: %v", err)
	}
}

func TestSimulationMatchesRealShape(t *testing.T) {
	// Structural indistinguishability: both real and simulated transcripts
	// consist of (U ∈ G1, Σ ∈ GT) satisfying the same verification
	// equation. Here we check the group-membership invariants coincide.
	f := newFixture(t)
	msg := []byte("m")
	g := f.scheme.Params().G1()

	real0, err := f.scheme.SignDesignated(f.user, msg, rand.Reader, f.cs.ID)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := f.scheme.Simulate(f.user.ID, msg, f.cs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range map[string]*Designated{"real": real0[0], "simulated": sim} {
		if !g.InSubgroup(d.U) {
			t.Fatalf("%s U outside G1", name)
		}
		if d.Sigma.IsOne() {
			t.Fatalf("%s Sigma degenerate", name)
		}
	}
}

func TestDesignationDoesNotLeakPublicVerifiability(t *testing.T) {
	// A third party holding (U, Σ) but no verifier secret key cannot run
	// the public verification equation: it requires V, which is never
	// published. We check that the designated form omits V entirely.
	f := newFixture(t)
	sigs, err := f.scheme.SignDesignated(f.user, []byte("m"), rand.Reader, f.cs.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Designated carries only U and Sigma — this is a compile-time fact of
	// the type; assert the runtime values too.
	d := sigs[0]
	if d.U == nil || d.Sigma == nil {
		t.Fatal("designated signature incomplete")
	}
}

func TestSimulationStatisticallyPlausible(t *testing.T) {
	// Real and simulated transcripts both have U = r·Q_ID for uniform r,
	// so the map U ↦ first byte of its encoding should look alike across
	// the two populations. This is a smoke-level distinguisher: a biased
	// simulator (e.g. fixed nonce) would fail it immediately.
	f := newFixture(t)
	g := f.scheme.Params().G1()
	const n = 64
	realOnes := make([]byte, 0, n)
	simOnes := make([]byte, 0, n)
	msg := []byte("distribution probe")
	for i := 0; i < n; i++ {
		r, err := f.scheme.SignDesignated(f.user, msg, rand.Reader, f.cs.ID)
		if err != nil {
			t.Fatal(err)
		}
		s, err := f.scheme.Simulate(f.user.ID, msg, f.cs, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		realOnes = append(realOnes, g.MarshalPoint(r[0].U)[1])
		simOnes = append(simOnes, g.MarshalPoint(s.U)[1])
	}
	// Compare the mean of the leading encoded byte; with 64 samples of a
	// ~uniform byte the means should sit near 127 with σ≈9, so a gap of
	// more than ~46 (5σ of the difference) indicates a broken simulator.
	mean := func(b []byte) float64 {
		var acc float64
		for _, v := range b {
			acc += float64(v)
		}
		return acc / float64(len(b))
	}
	mr, ms := mean(realOnes), mean(simOnes)
	if diff := mr - ms; diff > 46 || diff < -46 {
		t.Fatalf("transcript distributions diverge: real mean %.1f vs simulated %.1f", mr, ms)
	}
	// And both populations must contain distinct points (fresh nonces).
	if string(realOnes) == string(simOnes) {
		t.Fatal("implausibly identical populations")
	}
}

func TestQuickSignVerifyRoundtrip(t *testing.T) {
	// Property: any message signs and designated-verifies; any single-byte
	// mutation of the message is rejected.
	f := newFixture(t)
	prop := func(msg []byte, flip uint16) bool {
		sigs, err := f.scheme.SignDesignated(f.user, msg, rand.Reader, f.da.ID)
		if err != nil {
			return false
		}
		if f.scheme.Verify(sigs[0], msg, f.da) != nil {
			return false
		}
		if len(msg) == 0 {
			return true
		}
		mutated := append([]byte(nil), msg...)
		mutated[int(flip)%len(msg)] ^= 1 | byte(flip>>8)
		if string(mutated) == string(msg) {
			mutated[int(flip)%len(msg)] ^= 0xFF
		}
		return f.scheme.Verify(sigs[0], mutated, f.da) != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatalf("sign/verify property violated: %v", err)
	}
}

func TestQuickPublicVerifyRoundtrip(t *testing.T) {
	f := newFixture(t)
	prop := func(msg []byte) bool {
		sig, err := f.scheme.Sign(f.user, msg, rand.Reader)
		if err != nil {
			return false
		}
		if f.scheme.PublicVerify(f.user.ID, msg, sig) != nil {
			return false
		}
		// A different claimed signer must fail.
		return f.scheme.PublicVerify(f.da.ID, msg, sig) != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatalf("public verify property violated: %v", err)
	}
}
