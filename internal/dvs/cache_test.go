package dvs

import (
	"crypto/rand"
	"fmt"
	"testing"

	"seccloud/internal/ibc"
	"seccloud/internal/pairing"
)

// TestVerifierCacheBounded locks the satellite fix: with n share keys a
// threshold agency touches many verifier identities, and the precompute
// cache must stay bounded at its LRU capacity instead of growing per key.
func TestVerifierCacheBounded(t *testing.T) {
	sio, err := ibc.Setup(pairing.InsecureTest256(), rand.Reader)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	s := NewScheme(sio.Params()).WithVerifierCacheCap(4)
	keys := make([]*ibc.PrivateKey, 10)
	for i := range keys {
		if keys[i], err = sio.Extract(fmt.Sprintf("da:share-%d", i)); err != nil {
			t.Fatalf("Extract: %v", err)
		}
		s.PrecomputeVerifier(keys[i])
	}
	if got := s.VerifierCacheLen(); got != 4 {
		t.Fatalf("cache holds %d entries, capacity is 4", got)
	}

	// Eviction must not affect correctness: a signature still verifies
	// under a key whose precomputation was evicted (it is simply rebuilt).
	user, err := sio.Extract("user:alice")
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	msg := []byte("data")
	for _, k := range keys {
		ds, err := s.SignDesignated(user, msg, rand.Reader, k.ID)
		if err != nil {
			t.Fatalf("SignDesignated: %v", err)
		}
		if err := s.Verify(ds[0], msg, k); err != nil {
			t.Fatalf("Verify under %s after eviction: %v", k.ID, err)
		}
	}
	if got := s.VerifierCacheLen(); got != 4 {
		t.Fatalf("cache grew to %d entries after verifies, capacity is 4", got)
	}

	// Explicit eviction and shrink both drop entries.
	s.EvictVerifier(keys[9].ID)
	if got := s.VerifierCacheLen(); got != 3 {
		t.Fatalf("EvictVerifier left %d entries, want 3", got)
	}
	s.WithVerifierCacheCap(1)
	if got := s.VerifierCacheLen(); got != 1 {
		t.Fatalf("shrink left %d entries, want 1", got)
	}
}

// TestVerifierCacheLRUOrder verifies recency promotion: touching an old
// entry saves it from eviction.
func TestVerifierCacheLRUOrder(t *testing.T) {
	sio, err := ibc.Setup(pairing.InsecureTest256(), rand.Reader)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	s := NewScheme(sio.Params()).WithVerifierCacheCap(2)
	a, _ := sio.Extract("da:a")
	b, _ := sio.Extract("da:b")
	c, _ := sio.Extract("da:c")
	s.PrecomputeVerifier(a)
	s.PrecomputeVerifier(b)
	s.PrecomputeVerifier(a) // promote a; b is now LRU
	s.PrecomputeVerifier(c) // evicts b
	if s.lookupVerifier(a.ID, a.SK) == nil {
		t.Fatalf("promoted entry a was evicted")
	}
	if s.lookupVerifier(c.ID, c.SK) == nil {
		t.Fatalf("fresh entry c was evicted")
	}
	if s.lookupVerifier(b.ID, b.SK) != nil {
		t.Fatalf("LRU entry b survived past capacity")
	}
}

// TestVerifierCacheRekey verifies that a re-issued key for the same
// identity invalidates the stale precomputation instead of mis-verifying.
func TestVerifierCacheRekey(t *testing.T) {
	sioOld, err := ibc.Setup(pairing.InsecureTest256(), rand.Reader)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	sioNew, err := ibc.Setup(pairing.InsecureTest256(), rand.Reader)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	s := NewScheme(sioOld.Params())
	oldKey, _ := sioOld.Extract("da:auditor")
	s.PrecomputeVerifier(oldKey)
	newKey, _ := sioNew.Extract("da:auditor")
	// Same identity, different master secret → different SK point. The
	// cache must detect the mismatch and rebuild, not replay the old
	// Miller loop.
	if s.lookupVerifier(newKey.ID, newKey.SK) != nil {
		t.Fatalf("stale precomputation returned for re-issued key")
	}
	if got := s.VerifierCacheLen(); got != 0 {
		t.Fatalf("stale entry still cached (%d entries)", got)
	}
}
