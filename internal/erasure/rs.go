package erasure

import (
	"errors"
	"fmt"
)

// Common errors.
var (
	// ErrTooManyErasures reports more missing shards than parity can cover.
	ErrTooManyErasures = errors.New("erasure: too many missing shards")
	// ErrShardShape reports shards of inconsistent length or count.
	ErrShardShape = errors.New("erasure: inconsistent shard shape")
)

// Coder is a systematic Reed–Solomon erasure coder with k data shards and
// m parity shards (k + m ≤ 256, the GF(2⁸) evaluation-point budget).
// Immutable after construction and safe for concurrent use.
type Coder struct {
	k, m int
	gf   *gfTables
}

// NewCoder validates the geometry and builds the coder.
func NewCoder(dataShards, parityShards int) (*Coder, error) {
	if dataShards <= 0 || parityShards <= 0 {
		return nil, fmt.Errorf("erasure: shard counts must be positive, got k=%d m=%d",
			dataShards, parityShards)
	}
	if dataShards+parityShards > 256 {
		return nil, fmt.Errorf("erasure: k+m = %d exceeds the GF(256) limit of 256",
			dataShards+parityShards)
	}
	return &Coder{k: dataShards, m: parityShards, gf: newGFTables()}, nil
}

// DataShards returns k.
func (c *Coder) DataShards() int { return c.k }

// ParityShards returns m.
func (c *Coder) ParityShards() int { return c.m }

// TotalShards returns k + m.
func (c *Coder) TotalShards() int { return c.k + c.m }

// Encode computes the m parity shards for k equal-length data shards.
func (c *Coder) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("erasure: got %d data shards, want %d: %w",
			len(data), c.k, ErrShardShape)
	}
	size := len(data[0])
	for i, d := range data {
		if len(d) != size {
			return nil, fmt.Errorf("erasure: shard %d has %d bytes, want %d: %w",
				i, len(d), size, ErrShardShape)
		}
	}
	parity := make([][]byte, c.m)
	for e := range parity {
		parity[e] = make([]byte, size)
	}
	// For each byte column, evaluate the degree-<k interpolating
	// polynomial through (i, data[i][col]) at the parity points k..k+m-1.
	xs := make([]byte, c.k)
	for i := range xs {
		xs[i] = byte(i)
	}
	for col := 0; col < size; col++ {
		ys := make([]byte, c.k)
		for i := range ys {
			ys[i] = data[i][col]
		}
		for e := 0; e < c.m; e++ {
			v, err := c.lagrangeAt(xs, ys, byte(c.k+e))
			if err != nil {
				return nil, err
			}
			parity[e][col] = v
		}
	}
	return parity, nil
}

// Reconstruct fills in nil entries of shards (length k+m: data shards
// first, then parity) from any k surviving shards. Present shards are
// left untouched; reconstructed shards are newly allocated.
func (c *Coder) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("erasure: got %d shards, want %d: %w",
			len(shards), c.k+c.m, ErrShardShape)
	}
	present := make([]int, 0, c.k)
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("erasure: shard %d has %d bytes, want %d: %w",
				i, len(s), size, ErrShardShape)
		}
		present = append(present, i)
	}
	if len(present) < c.k {
		return fmt.Errorf("erasure: only %d of %d shards present: %w",
			len(present), c.k, ErrTooManyErasures)
	}
	missing := make([]int, 0, c.m)
	for i, s := range shards {
		if s == nil {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	// Interpolate through the first k present shards.
	basis := present[:c.k]
	xs := make([]byte, c.k)
	for i, idx := range basis {
		xs[i] = byte(idx)
	}
	recovered := make([][]byte, len(missing))
	for i := range recovered {
		recovered[i] = make([]byte, size)
	}
	ys := make([]byte, c.k)
	for col := 0; col < size; col++ {
		for i, idx := range basis {
			ys[i] = shards[idx][col]
		}
		for mi, idx := range missing {
			v, err := c.lagrangeAt(xs, ys, byte(idx))
			if err != nil {
				return err
			}
			recovered[mi][col] = v
		}
	}
	for mi, idx := range missing {
		shards[idx] = recovered[mi]
	}
	return nil
}

// Verify recomputes parity from the data shards and reports whether every
// shard is consistent (useful after reconstruction or as an audit aid).
func (c *Coder) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.k+c.m {
		return false, fmt.Errorf("erasure: got %d shards, want %d: %w",
			len(shards), c.k+c.m, ErrShardShape)
	}
	for i, s := range shards {
		if s == nil {
			return false, fmt.Errorf("erasure: shard %d missing: %w", i, ErrShardShape)
		}
	}
	parity, err := c.Encode(shards[:c.k])
	if err != nil {
		return false, err
	}
	for e := 0; e < c.m; e++ {
		if string(parity[e]) != string(shards[c.k+e]) {
			return false, nil
		}
	}
	return true, nil
}

// lagrangeAt evaluates the interpolating polynomial through (xs, ys) at x.
func (c *Coder) lagrangeAt(xs, ys []byte, x byte) (byte, error) {
	var acc byte
	for i := range xs {
		if ys[i] == 0 {
			continue
		}
		num, den := byte(1), byte(1)
		for j := range xs {
			if j == i {
				continue
			}
			num = c.gf.mul(num, x^xs[j])     // (x − x_j); subtraction is XOR
			den = c.gf.mul(den, xs[i]^xs[j]) // (x_i − x_j)
		}
		frac, err := c.gf.div(num, den)
		if err != nil {
			return 0, err
		}
		acc ^= c.gf.mul(ys[i], frac)
	}
	return acc, nil
}
