// Package erasure implements systematic Reed–Solomon erasure coding over
// GF(2⁸), the retrievability substrate motivated by the proofs-of-
// retrievability line of work the paper cites (Juels–Kaliski [11],
// Shacham–Waters [12]): SecCloud's storage audits *detect* deletion; an
// erasure-coded dataset additionally lets the user *recover* up to m
// deleted blocks from any k survivors.
//
// Construction: each data block is a shard; byte position j across the k
// data shards defines a polynomial p_j of degree < k with p_j(i) = shard
// i's byte. Parity shard e stores p_j(k+e). Any k of the k+m shards
// reconstruct every p_j by Lagrange interpolation and therefore all
// shards. The field is GF(2⁸) with the AES polynomial x⁸+x⁴+x³+x+1.
package erasure

import "fmt"

// gfPoly is the reduction polynomial (0x11B, the AES field).
const gfPoly = 0x11B

// gfTables holds the log/antilog tables for fast multiplication.
// Built once per Coder; 768 bytes, no package-level mutable state.
type gfTables struct {
	exp [512]byte // doubled so mul can skip a mod 255
	log [256]byte
}

func newGFTables() *gfTables {
	t := &gfTables{}
	// The element x (= 2) is NOT primitive for 0x11B; the standard
	// generator is x+1 (= 3), whose powers enumerate all of GF(256)*.
	x := 1
	for i := 0; i < 255; i++ {
		t.exp[i] = byte(x)
		t.log[x] = byte(i)
		x2 := x << 1
		if x2&0x100 != 0 {
			x2 ^= gfPoly
		}
		x = x2 ^ x // x ← 3·x
	}
	for i := 255; i < 512; i++ {
		t.exp[i] = t.exp[i-255]
	}
	return t
}

// mul multiplies in GF(256).
func (t *gfTables) mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return t.exp[int(t.log[a])+int(t.log[b])]
}

// inv returns a⁻¹; a must be nonzero.
func (t *gfTables) inv(a byte) (byte, error) {
	if a == 0 {
		return 0, fmt.Errorf("erasure: inverse of zero in GF(256)")
	}
	return t.exp[255-int(t.log[a])], nil
}

// div returns a/b; b must be nonzero.
func (t *gfTables) div(a, b byte) (byte, error) {
	if b == 0 {
		return 0, fmt.Errorf("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0, nil
	}
	return t.exp[int(t.log[a])+255-int(t.log[b])], nil
}
