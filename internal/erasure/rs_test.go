package erasure

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCoderValidation(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {200, 57}} {
		if _, err := NewCoder(tc[0], tc[1]); err == nil {
			t.Fatalf("NewCoder(%d,%d) accepted", tc[0], tc[1])
		}
	}
	c, err := NewCoder(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.DataShards() != 4 || c.ParityShards() != 2 || c.TotalShards() != 6 {
		t.Fatalf("geometry accessors wrong: %d/%d/%d",
			c.DataShards(), c.ParityShards(), c.TotalShards())
	}
}

func TestGFFieldLaws(t *testing.T) {
	gf := newGFTables()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := byte(rng.Intn(256))
		b := byte(rng.Intn(256))
		c := byte(rng.Intn(256))
		if gf.mul(a, b) != gf.mul(b, a) {
			t.Fatal("mul not commutative")
		}
		if gf.mul(gf.mul(a, b), c) != gf.mul(a, gf.mul(b, c)) {
			t.Fatal("mul not associative")
		}
		// Distributivity over XOR (field addition).
		if gf.mul(a, b^c) != gf.mul(a, b)^gf.mul(a, c) {
			t.Fatal("distributivity fails")
		}
		if a != 0 {
			inv, err := gf.inv(a)
			if err != nil {
				t.Fatal(err)
			}
			if gf.mul(a, inv) != 1 {
				t.Fatal("inverse fails")
			}
		}
	}
	if _, err := gf.inv(0); err == nil {
		t.Fatal("inv(0) accepted")
	}
	if _, err := gf.div(1, 0); err == nil {
		t.Fatal("div by zero accepted")
	}
	if q, err := gf.div(0, 7); err != nil || q != 0 {
		t.Fatalf("0/7 = %d, %v", q, err)
	}
}

func makeShards(rng *rand.Rand, k, size int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
	}
	return data
}

func TestEncodeReconstructRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, geo := range [][2]int{{1, 1}, {4, 2}, {10, 4}, {16, 16}} {
		k, m := geo[0], geo[1]
		c, err := NewCoder(k, m)
		if err != nil {
			t.Fatal(err)
		}
		data := makeShards(rng, k, 64)
		parity, err := c.Encode(data)
		if err != nil {
			t.Fatalf("Encode(%d,%d): %v", k, m, err)
		}
		if len(parity) != m {
			t.Fatalf("got %d parity shards, want %d", len(parity), m)
		}
		all := append(append([][]byte{}, data...), parity...)
		ok, err := c.Verify(all)
		if err != nil || !ok {
			t.Fatalf("Verify(%d,%d) = %v, %v", k, m, ok, err)
		}

		// Erase exactly m shards at random positions and reconstruct.
		shards := make([][]byte, len(all))
		copy(shards, all)
		perm := rng.Perm(k + m)
		for _, idx := range perm[:m] {
			shards[idx] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("Reconstruct(%d,%d): %v", k, m, err)
		}
		for i := range all {
			if !bytes.Equal(all[i], shards[i]) {
				t.Fatalf("shard %d not recovered correctly (k=%d m=%d)", i, k, m)
			}
		}
	}
}

func TestReconstructTooManyErasures(t *testing.T) {
	c, err := NewCoder(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	data := makeShards(rng, 4, 16)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := append(append([][]byte{}, data...), parity...)
	shards[0], shards[2], shards[4] = nil, nil, nil // 3 erasures > m=2
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooManyErasures) {
		t.Fatalf("got %v, want ErrTooManyErasures", err)
	}
}

func TestShapeValidation(t *testing.T) {
	c, err := NewCoder(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Encode([][]byte{{1}, {2}}); !errors.Is(err, ErrShardShape) {
		t.Fatalf("wrong shard count accepted: %v", err)
	}
	if _, err := c.Encode([][]byte{{1, 2}, {3}, {4, 5}}); !errors.Is(err, ErrShardShape) {
		t.Fatalf("ragged shards accepted: %v", err)
	}
	if err := c.Reconstruct(make([][]byte, 4)); !errors.Is(err, ErrShardShape) {
		t.Fatalf("wrong reconstruct count accepted: %v", err)
	}
	if _, err := c.Verify(make([][]byte, 5)); err == nil {
		t.Fatal("verify with nil shards accepted")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	c, err := NewCoder(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	data := makeShards(rng, 4, 32)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([][]byte{}, data...), parity...)
	all[1] = append([]byte(nil), all[1]...)
	all[1][7] ^= 0x55
	ok, err := c.Verify(all)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("corrupted shard passed verification")
	}
}

func TestQuickAnyKSurvivorsRecover(t *testing.T) {
	// Property: for random data, any random erasure pattern of ≤ m shards
	// is fully recoverable.
	c, err := NewCoder(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := makeShards(rng, 6, 24)
		parity, err := c.Encode(data)
		if err != nil {
			return false
		}
		all := append(append([][]byte{}, data...), parity...)
		shards := make([][]byte, len(all))
		copy(shards, all)
		erasures := 1 + rng.Intn(3)
		for _, idx := range rng.Perm(9)[:erasures] {
			shards[idx] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := range all {
			if !bytes.Equal(all[i], shards[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatalf("recovery property violated: %v", err)
	}
}

func TestReconstructNoOpWhenComplete(t *testing.T) {
	c, err := NewCoder(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	data := makeShards(rng, 3, 8)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([][]byte{}, data...), parity...)
	if err := c.Reconstruct(all); err != nil {
		t.Fatalf("complete reconstruct errored: %v", err)
	}
}

func BenchmarkEncode(b *testing.B) {
	for _, geo := range [][2]int{{10, 4}, {32, 8}} {
		k, m := geo[0], geo[1]
		b.Run(fmt.Sprintf("k=%d,m=%d", k, m), func(b *testing.B) {
			c, err := NewCoder(k, m)
			if err != nil {
				b.Fatal(err)
			}
			data := makeShards(rand.New(rand.NewSource(1)), k, 1024)
			b.SetBytes(int64(k * 1024))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Encode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReconstruct(b *testing.B) {
	c, err := NewCoder(10, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	data := makeShards(rng, 10, 1024)
	parity, err := c.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	all := append(append([][]byte{}, data...), parity...)
	b.SetBytes(10 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, len(all))
		copy(shards, all)
		shards[0], shards[5], shards[11], shards[13] = nil, nil, nil, nil
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
