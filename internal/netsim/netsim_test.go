package netsim

import (
	"sync"
	"testing"
	"time"

	"seccloud/internal/wire"
)

// echoHandler answers every message with a canned StoreResponse carrying
// the request kind, so tests can confirm delivery.
type echoHandler struct{}

func (echoHandler) Handle(m wire.Message) wire.Message {
	return &wire.StoreResponse{OK: true, Error: m.Kind()}
}

func TestLoopbackRoundTrip(t *testing.T) {
	l := NewLoopback(echoHandler{}, LinkConfig{})
	resp, err := l.RoundTrip(&wire.ComputeRequest{UserID: "u", JobID: "j"})
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	sr, ok := resp.(*wire.StoreResponse)
	if !ok || sr.Error != "compute_req" {
		t.Fatalf("unexpected response %#v", resp)
	}
	st := l.Stats()
	if st.Calls != 1 || st.BytesSent == 0 || st.BytesRecv == 0 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestLoopbackLatencyAccounting(t *testing.T) {
	l := NewLoopback(echoHandler{}, LinkConfig{
		RTT:            5 * time.Millisecond,
		BytesPerSecond: 1000, // 1 KB/s: every byte costs 1ms
	})
	if _, err := l.RoundTrip(&wire.StoreResponse{OK: true}); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	wantMin := 5*time.Millisecond + time.Duration(st.TotalBytes())*time.Millisecond
	if st.SimLatency < wantMin {
		t.Fatalf("simulated latency %v, want at least %v", st.SimLatency, wantMin)
	}
	l.Stats() // idempotent snapshot
}

func TestStatsReset(t *testing.T) {
	l := NewLoopback(echoHandler{}, LinkConfig{})
	if _, err := l.RoundTrip(&wire.StoreResponse{OK: true}); err != nil {
		t.Fatal(err)
	}
	l.stats.Reset()
	if st := l.Stats(); st.Calls != 0 || st.TotalBytes() != 0 {
		t.Fatalf("reset did not zero stats: %+v", st)
	}
}

func TestHandlerFunc(t *testing.T) {
	h := HandlerFunc(func(m wire.Message) wire.Message {
		return &wire.ErrorResponse{Code: "x", Msg: m.Kind()}
	})
	resp := h.Handle(&wire.StoreResponse{})
	if er, ok := resp.(*wire.ErrorResponse); !ok || er.Msg != "store_resp" {
		t.Fatalf("HandlerFunc broken: %#v", resp)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := NewTCPServer("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatalf("NewTCPServer: %v", err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	}()

	client, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatalf("DialTCP: %v", err)
	}
	defer func() {
		if err := client.Close(); err != nil {
			t.Errorf("closing client: %v", err)
		}
	}()

	for i := 0; i < 5; i++ {
		resp, err := client.RoundTrip(&wire.ChallengeRequest{JobID: "j"})
		if err != nil {
			t.Fatalf("RoundTrip %d: %v", i, err)
		}
		if sr, ok := resp.(*wire.StoreResponse); !ok || sr.Error != "challenge_req" {
			t.Fatalf("unexpected response %#v", resp)
		}
	}
	st := client.Stats()
	if st.Calls != 5 || st.TotalBytes() == 0 {
		t.Fatalf("TCP stats wrong: %+v", st)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := NewTCPServer("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := DialTCP(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = client.Close() }()
			for i := 0; i < 10; i++ {
				if _, err := client.RoundTrip(&wire.StoreResponse{OK: true}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent client error: %v", err)
	}
}

func TestTCPClientClosedErrors(t *testing.T) {
	srv, err := NewTCPServer("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatalf("double close should be nil, got %v", err)
	}
	if _, err := client.RoundTrip(&wire.StoreResponse{}); err == nil {
		t.Fatal("round trip on closed client succeeded")
	}
}

func TestTCPServerCloseIsIdempotent(t *testing.T) {
	srv, err := NewTCPServer("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := DialTCP(srv.Addr()); err == nil {
		t.Fatal("dial after close succeeded")
	}
}

func TestStatsConcurrentRecording(t *testing.T) {
	var s Stats
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.record(1, 2, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Calls != 8000 || snap.BytesSent != 8000 || snap.BytesRecv != 16000 {
		t.Fatalf("lost updates: %+v", snap)
	}
}
