package netsim

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"seccloud/internal/wire"
)

// LatencyTracker keeps a ring of recent round-trip latencies so hedging
// can derive its launch delay from the observed tail (classically the
// p95: hedge only the slowest ~5% of requests, bounding the duplicate
// traffic a hedge adds). Safe for concurrent use; the zero value is not
// useful, use NewLatencyTracker.
type LatencyTracker struct {
	mu     sync.Mutex
	ring   []time.Duration
	next   int
	filled int
}

// NewLatencyTracker tracks the most recent window observations (minimum
// 8).
func NewLatencyTracker(window int) *LatencyTracker {
	if window < 8 {
		window = 8
	}
	return &LatencyTracker{ring: make([]time.Duration, window)}
}

// Observe records one completed round trip.
func (t *LatencyTracker) Observe(d time.Duration) {
	t.mu.Lock()
	t.ring[t.next] = d
	t.next = (t.next + 1) % len(t.ring)
	if t.filled < len(t.ring) {
		t.filled++
	}
	t.mu.Unlock()
}

// Quantile returns the q-quantile (0 < q ≤ 1) of the window, or 0 when
// nothing has been observed yet.
func (t *LatencyTracker) Quantile(q float64) time.Duration {
	t.mu.Lock()
	n := t.filled
	buf := make([]time.Duration, n)
	copy(buf, t.ring[:n])
	t.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(q*float64(n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}

// P95 is Quantile(0.95).
func (t *LatencyTracker) P95() time.Duration { return t.Quantile(0.95) }

// HedgeStats counts hedging activity.
type HedgeStats struct {
	// Launched counts secondary requests actually sent.
	Launched int64
	// Wins counts hedges whose secondary answered first.
	Wins int64
}

// hedgeResult carries one leg's outcome.
type hedgeResult struct {
	resp   wire.Message
	err    error
	hedged bool // true for the secondary leg
}

// HedgedRoundTrip sends m to primary and, if no reply has arrived after
// delay, duplicates it to secondary; the first success wins and the
// losing leg's context is cancelled. Requests must be idempotent — in
// SecCloud they are: audits are reads and compute submissions are
// deduplicated server-side by idempotency digest, so a duplicate yields
// a byte-identical reply.
//
// The second return value reports whether the winning reply (or, when
// both legs fail, the returned error) came from the secondary. A primary
// failure before the hedge launches returns immediately — fast failure
// is the failover path's job, hedging only attacks slow responses. When
// both legs fail the primary's error is preferred, so callers classify
// the canonical replica's fate. stats may be nil.
func HedgedRoundTrip(ctx context.Context, primary, secondary Client, delay time.Duration,
	m wire.Message, stats *HedgeStats) (wire.Message, bool, error) {
	if secondary == nil {
		resp, err := primary.RoundTripContext(ctx, m)
		return resp, false, err
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan hedgeResult, 2)
	go func() {
		resp, err := primary.RoundTripContext(hctx, m)
		ch <- hedgeResult{resp: resp, err: err}
	}()
	timer := time.NewTimer(delay)
	defer timer.Stop()

	launched := false
	var primaryErr error
	pending := 1
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				if r.hedged && stats != nil {
					atomic.AddInt64(&stats.Wins, 1)
				}
				return r.resp, r.hedged, nil
			}
			if !r.hedged {
				primaryErr = r.err
				if !launched {
					// Fast primary failure before the hedge fired: let the
					// retry/failover machinery handle it.
					return nil, false, r.err
				}
			}
			if pending > 0 {
				continue // the other leg may still succeed
			}
			if primaryErr != nil {
				return nil, false, primaryErr
			}
			return nil, true, r.err
		case <-timer.C:
			if !launched {
				launched = true
				pending++
				if stats != nil {
					atomic.AddInt64(&stats.Launched, 1)
				}
				go func() {
					resp, err := secondary.RoundTripContext(hctx, m)
					ch <- hedgeResult{resp: resp, err: err, hedged: true}
				}()
			}
		}
	}
}

// HedgedClient decorates a primary client with tail-latency hedging
// against a secondary replica. Delay fixes the hedge trigger; when zero,
// the trigger adapts to the observed p95 of recent round trips (with
// MinDelay as the floor while the window warms up). Both wrapped clients
// must reach replicas holding the same data.
type HedgedClient struct {
	primary   Client
	secondary Client
	delay     time.Duration
	minDelay  time.Duration
	tracker   *LatencyTracker
	stats     HedgeStats
}

var _ Client = (*HedgedClient)(nil)

// NewHedgedClient wraps primary with a hedge to secondary. delay == 0
// selects adaptive p95 triggering.
func NewHedgedClient(primary, secondary Client, delay time.Duration) *HedgedClient {
	c := &HedgedClient{primary: primary, secondary: secondary, delay: delay,
		minDelay: time.Millisecond}
	if delay == 0 {
		c.tracker = NewLatencyTracker(64)
	}
	return c
}

// hedgeDelay resolves the current trigger delay.
func (c *HedgedClient) hedgeDelay() time.Duration {
	if c.delay > 0 {
		return c.delay
	}
	if d := c.tracker.P95(); d > c.minDelay {
		return d
	}
	return c.minDelay
}

// RoundTrip hedges with a background context.
func (c *HedgedClient) RoundTrip(m wire.Message) (wire.Message, error) {
	return c.RoundTripContext(context.Background(), m)
}

// RoundTripContext performs the hedged round trip.
func (c *HedgedClient) RoundTripContext(ctx context.Context, m wire.Message) (wire.Message, error) {
	start := time.Now()
	resp, _, err := HedgedRoundTrip(ctx, c.primary, c.secondary, c.hedgeDelay(), m, &c.stats)
	if err == nil && c.tracker != nil {
		c.tracker.Observe(time.Since(start))
	}
	return resp, err
}

// HedgeStats returns a copy of the hedge counters.
func (c *HedgedClient) HedgeStats() HedgeStats {
	return HedgeStats{
		Launched: atomic.LoadInt64(&c.stats.Launched),
		Wins:     atomic.LoadInt64(&c.stats.Wins),
	}
}

// Stats returns the primary link's counters.
func (c *HedgedClient) Stats() StatsSnapshot { return c.primary.Stats() }

// Close closes both wrapped clients.
func (c *HedgedClient) Close() error {
	err := c.primary.Close()
	if serr := c.secondary.Close(); err == nil {
		err = serr
	}
	return err
}
