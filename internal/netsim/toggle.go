package netsim

import (
	"sync/atomic"

	"seccloud/internal/wire"
)

// DownableHandler wraps a Handler with a kill switch. While down, Handle
// returns nil — transports treat that as the process dying mid-request
// (connection drop), so callers see a retryable transport fault, never an
// error reply. This models a crashed or partitioned server behind a
// stable address: the fleet schedules against it, requests to it fail at
// the transport layer, and flipping the switch back "reboots" it with its
// state intact.
//
// Unlike RestartableServer (which kills a real listener), the toggle is
// free of OS resources, so epoch simulations can down and revive servers
// every epoch without bind/port churn.
type DownableHandler struct {
	inner Handler
	down  atomic.Bool
}

// NewDownableHandler wraps h, initially up.
func NewDownableHandler(h Handler) *DownableHandler {
	return &DownableHandler{inner: h}
}

// Handle forwards to the wrapped handler, or drops the request (nil
// reply → transport-level disconnect) while down.
func (d *DownableHandler) Handle(m wire.Message) wire.Message {
	if d.down.Load() {
		return nil
	}
	return d.inner.Handle(m)
}

// SetDown flips the kill switch.
func (d *DownableHandler) SetDown(down bool) { d.down.Store(down) }

// Down reports whether the handler is currently dropping requests.
func (d *DownableHandler) Down() bool { return d.down.Load() }
