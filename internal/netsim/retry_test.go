package netsim

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"seccloud/internal/wire"
)

// fakeClock records requested sleeps without ever actually sleeping, so
// retry tests run in microseconds.
type fakeClock struct {
	slept []time.Duration
}

func (f *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	f.slept = append(f.slept, d)
	return ctx.Err()
}

func newTestRetrier(clock *fakeClock) *Retrier {
	r := NewRetrier(42)
	r.Sleep = clock.sleep
	return r
}

func TestRetrierRetriesTransportErrors(t *testing.T) {
	clock := &fakeClock{}
	r := newTestRetrier(clock)
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return &FaultError{Kind: FaultDrop, Op: "request"}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("op ran %d times, want 3", calls)
	}
	if len(clock.slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(clock.slept))
	}
}

func TestRetrierBackoffGrowsAndCaps(t *testing.T) {
	clock := &fakeClock{}
	r := newTestRetrier(clock)
	r.MaxAttempts = 8
	r.Jitter = 0 // exact values
	err := r.Do(context.Background(), func(context.Context) error {
		return &FaultError{Kind: FaultDrop}
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Attempts != 8 {
		t.Fatalf("want ExhaustedError after 8 attempts, got %v", err)
	}
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		2 * time.Second, // capped at MaxDelay
	}
	if len(clock.slept) != len(want) {
		t.Fatalf("slept %d times, want %d", len(clock.slept), len(want))
	}
	for i, d := range want {
		if clock.slept[i] != d {
			t.Fatalf("backoff %d = %v, want %v", i, clock.slept[i], d)
		}
	}
}

func TestRetrierJitterStaysBounded(t *testing.T) {
	clock := &fakeClock{}
	r := newTestRetrier(clock)
	r.MaxAttempts = 20
	r.Jitter = 0.2
	_ = r.Do(context.Background(), func(context.Context) error {
		return &FaultError{Kind: FaultDrop}
	})
	if len(clock.slept) != 19 {
		t.Fatalf("slept %d times", len(clock.slept))
	}
	for i, d := range clock.slept {
		// Every jittered backoff stays within ±20% of the cap ceiling.
		if d <= 0 || d > time.Duration(float64(r.MaxDelay)*1.2) {
			t.Fatalf("backoff %d = %v escapes the jitter bounds", i, d)
		}
	}
}

func TestRetrierJitterDeterministic(t *testing.T) {
	run := func() []time.Duration {
		clock := &fakeClock{}
		r := newTestRetrier(clock)
		r.MaxAttempts = 6
		_ = r.Do(context.Background(), func(context.Context) error {
			return &FaultError{Kind: FaultDrop}
		})
		return clock.slept
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different backoffs: %v vs %v", a, b)
		}
	}
}

func TestRetrierTerminalErrorNotRetried(t *testing.T) {
	clock := &fakeClock{}
	r := newTestRetrier(clock)
	terminal := fmt.Errorf("protocol: bad proof")
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return terminal
	})
	if !errors.Is(err, terminal) {
		t.Fatalf("got %v, want terminal error", err)
	}
	if calls != 1 || len(clock.slept) != 0 {
		t.Fatalf("terminal error was retried: calls=%d sleeps=%d", calls, len(clock.slept))
	}
}

func TestRetrierContextCancelStops(t *testing.T) {
	clock := &fakeClock{}
	r := newTestRetrier(clock)
	r.MaxAttempts = 100
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := r.Do(ctx, func(context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return &FaultError{Kind: FaultDrop}
	})
	if err == nil {
		t.Fatal("cancelled retry loop returned nil")
	}
	if calls > 3 {
		t.Fatalf("op kept running after cancel: %d calls", calls)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	cases := []struct {
		err       error
		retryable bool
		timeout   bool
	}{
		{&FaultError{Kind: FaultDrop, Op: "request"}, true, false},
		{&TransportError{Op: "read", Err: errors.New("conn reset")}, true, false},
		{&TransportError{Op: "roundtrip", Timeout: true, Err: context.DeadlineExceeded}, true, true},
		{fmt.Errorf("wrap: %w", &FaultError{Kind: FaultCorrupt}), true, false},
		{fmt.Errorf("decode: %w", wire.ErrCorrupt), true, false},
		{fmt.Errorf("read: %w", wire.ErrTruncated), true, false},
		{errors.New("protocol: server refused"), false, false},
		{&ExhaustedError{Attempts: 3, Err: &FaultError{Kind: FaultDrop}}, true, false},
		{&ExhaustedError{Attempts: 3, Err: &TransportError{Timeout: true, Err: context.DeadlineExceeded}}, true, true},
	}
	for i, tc := range cases {
		if got := IsRetryable(tc.err); got != tc.retryable {
			t.Errorf("case %d (%v): IsRetryable=%v, want %v", i, tc.err, got, tc.retryable)
		}
		if got := IsTimeout(tc.err); got != tc.timeout {
			t.Errorf("case %d (%v): IsTimeout=%v, want %v", i, tc.err, got, tc.timeout)
		}
	}
}

func TestRetryClientTransparentRecovery(t *testing.T) {
	inner := NewLoopback(echoHandler{}, LinkConfig{}).WithFaults(FaultConfig{
		Seed:     7,
		DropRate: 0.5,
	})
	clock := &fakeClock{}
	r := newTestRetrier(clock)
	r.MaxAttempts = 10
	client := NewRetryClient(inner, r)
	for i := 0; i < 50; i++ {
		if _, err := client.RoundTrip(&wire.StoreResponse{OK: true}); err != nil {
			t.Fatalf("round trip %d failed through retry client: %v", i, err)
		}
	}
	if inner.Stats().Faults.Drops == 0 {
		t.Fatal("fault injector never fired; test is vacuous")
	}
}
