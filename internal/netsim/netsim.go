// Package netsim provides the transports SecCloud parties talk over.
//
// Two implementations of the same small RPC abstraction:
//
//   - Loopback: an in-process transport that still fully encodes every
//     message, so byte counts are exact, and charges a configurable
//     latency/bandwidth model to a virtual clock. This is the substrate
//     for the paper's transmission-cost (C_trans) accounting — the paper
//     itself simulates; we additionally keep the real protocol bytes.
//
//   - TCP: a real net-based transport with length-prefixed frames, used by
//     the integration tests and the CLI demo to show the protocol running
//     across actual sockets.
//
// The paper highlights that "data transfer bottlenecks are regarded top
// ten obstacles" for cloud computing; Stats makes those transfer costs a
// first-class measured quantity.
package netsim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"seccloud/internal/obs"
	"seccloud/internal/wire"
)

// Handler processes a single request and produces a response. A Handler
// must be safe for concurrent use; the TCP server invokes it from
// per-connection goroutines.
//
// A nil response means the handling process died mid-request (e.g. an
// injected crash point fired): transports treat it as a connection death
// — the caller sees a retryable transport error, never a reply — exactly
// what a SIGKILL between receiving a request and writing its response
// looks like from the outside.
type Handler interface {
	Handle(m wire.Message) wire.Message
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m wire.Message) wire.Message

// Handle calls f(m).
func (f HandlerFunc) Handle(m wire.Message) wire.Message { return f(m) }

// Client performs request/response round trips against one peer.
type Client interface {
	// RoundTrip sends m and waits for the peer's reply (background
	// context; no deadline beyond the transport's own).
	RoundTrip(m wire.Message) (wire.Message, error)
	// RoundTripContext is RoundTrip with cancellation and a per-request
	// deadline taken from ctx. Failures are classified by the package's
	// error taxonomy: transport-class errors satisfy IsRetryable.
	RoundTripContext(ctx context.Context, m wire.Message) (wire.Message, error)
	// Stats returns a snapshot of the link's traffic counters.
	Stats() StatsSnapshot
	// Close releases the client's resources.
	Close() error
}

// LinkConfig models a network link for the loopback transport.
type LinkConfig struct {
	// RTT is the round-trip latency charged per call.
	RTT time.Duration
	// BytesPerSecond is the link bandwidth; zero means infinite.
	BytesPerSecond float64
}

// Stats accumulates traffic counters. Safe for concurrent use; the zero
// value is ready.
type Stats struct {
	mu         sync.Mutex
	calls      int64
	bytesSent  int64
	bytesRecv  int64
	simLatency time.Duration
}

// StatsSnapshot is an immutable copy of the counters.
type StatsSnapshot struct {
	// Calls is the number of round trips completed.
	Calls int64
	// BytesSent counts request bytes (client → server).
	BytesSent int64
	// BytesRecv counts response bytes (server → client).
	BytesRecv int64
	// SimLatency is the total modeled network time (loopback only; zero
	// for TCP, where latency is real).
	SimLatency time.Duration
	// Faults counts injected network faults on this link.
	Faults FaultCounts
}

// TotalBytes is the sum of both directions.
func (s StatsSnapshot) TotalBytes() int64 { return s.BytesSent + s.BytesRecv }

func (s *Stats) record(sent, recv int, lat time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	s.bytesSent += int64(sent)
	s.bytesRecv += int64(recv)
	s.simLatency += lat
}

// Snapshot returns a copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StatsSnapshot{
		Calls:      s.calls,
		BytesSent:  s.bytesSent,
		BytesRecv:  s.bytesRecv,
		SimLatency: s.simLatency,
	}
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls, s.bytesSent, s.bytesRecv, s.simLatency = 0, 0, 0, 0
}

// Loopback is the in-process transport. It encodes every message through
// the real wire codec (so malformed messages fail exactly as they would on
// a socket) and charges the link model to a virtual clock. With a
// FaultConfig attached (WithFaults) it additionally injects seeded,
// deterministic network faults on both message legs.
type Loopback struct {
	handler   Handler
	link      LinkConfig
	stats     Stats
	faults    atomic.Pointer[faultInjector]
	clock     atomic.Pointer[Clock]
	obs       *rpcObs
	admission *Admission
}

var _ Client = (*Loopback)(nil)

// NewLoopback returns a loopback client bound to handler.
func NewLoopback(handler Handler, link LinkConfig) *Loopback {
	return &Loopback{handler: handler, link: link}
}

// WithFaults attaches a fault injector to the link and returns l.
func (l *Loopback) WithFaults(fc FaultConfig) *Loopback {
	l.faults.Store(newFaultInjector(fc))
	return l
}

// SetFaults replaces the link's fault configuration at runtime — the
// nemesis handle. The fault counters accumulated so far carry over to the
// new injector, so Stats stays monotonic across reconfigurations; the
// PRNG restarts from the new config's seed, keeping every configuration
// epoch independently reproducible.
func (l *Loopback) SetFaults(fc FaultConfig) {
	old := l.faults.Load()
	inj := newFaultInjector(fc)
	if old != nil {
		if inj == nil {
			// Inert config: keep an injector alive purely to carry the
			// historical counters (all rates zero, so it never fires).
			inj = &faultInjector{}
		}
		inj.counts = old.snapshot()
	}
	l.faults.Store(inj)
}

// WithClock makes the link evaluate caller deadlines against c instead of
// the wall clock, so injected clock skew feeds the same deadline
// arithmetic production code would run. A nil clock (the default) means
// time.Now.
func (l *Loopback) WithClock(c *Clock) *Loopback {
	l.clock.Store(c)
	return l
}

// now reads the link's notion of current time.
func (l *Loopback) now() time.Time {
	if c := l.clock.Load(); c != nil {
		return c.Now()
	}
	return time.Now()
}

// WithObs attaches observability instruments to the link (latency
// histogram, request and fault counters under transport="loopback") and
// returns l. A nil hub leaves the link uninstrumented.
func (l *Loopback) WithObs(h *obs.Hub) *Loopback {
	l.obs = newRPCObs(h, "loopback")
	return l
}

// WithAdmission puts the "server side" of the loopback behind an
// admission gate: requests beyond the gate's inflight and queue bounds
// receive a typed overload response (surfacing to callers as a
// non-retryable *OverloadedError) instead of executing. Gates are meant
// to be shared — attach the same *Admission to every loopback reaching
// one server so the bound covers the server, not the link. Unlike the
// link's virtual latency, time spent queued at the gate is real blocked
// time, which is what makes overload experiments honest.
func (l *Loopback) WithAdmission(a *Admission) *Loopback {
	l.admission = a
	return l
}

// RoundTrip encodes m, delivers it to the handler, and encodes the reply.
func (l *Loopback) RoundTrip(m wire.Message) (wire.Message, error) {
	return l.RoundTripContext(context.Background(), m)
}

// RoundTripContext is RoundTrip with cancellation and deadline handling.
// The loopback's latency is virtual: a ctx deadline is enforced against
// the *modeled* latency of this call (link RTT + transfer + injected
// delay), so deadline behaviour is deterministic and test-friendly.
func (l *Loopback) RoundTripContext(ctx context.Context, m wire.Message) (wire.Message, error) {
	resp, lat, err := l.roundTripModeled(ctx, m)
	if err == nil {
		resp, err = overloadResponse("roundtrip", resp)
	}
	l.obs.observe(lat, err)
	return resp, err
}

// roundTripModeled performs the round trip and reports the modeled
// latency accumulated up to the point the call succeeded or died, which
// the observability layer records even for failed trips.
func (l *Loopback) roundTripModeled(ctx context.Context, m wire.Message) (wire.Message, time.Duration, error) {
	var lat time.Duration
	if err := ctx.Err(); err != nil {
		return nil, lat, transportErr("roundtrip", err)
	}
	reqBytes, err := wire.Encode(m)
	if err != nil {
		return nil, lat, err
	}
	// One injector per round trip: a concurrent SetFaults reconfigures
	// the *next* call, never a call in flight.
	faults := l.faults.Load()

	// Request leg.
	reqPlan := faults.plan(true)
	lat += reqPlan.delay
	if reqPlan.disconnect {
		return nil, lat, &FaultError{Kind: FaultDisconnect, Op: "request"}
	}
	if reqPlan.drop {
		l.stats.record(len(reqBytes), 0, lat)
		return nil, lat, &FaultError{Kind: FaultDrop, Op: "request"}
	}
	if reqPlan.corrupt {
		reqBytes = append([]byte(nil), reqBytes...)
		faults.corruptFrame(reqBytes)
	}
	// Decode on the "server side" to faithfully model (de)serialization.
	req, err := wire.Decode(reqBytes)
	if err != nil {
		l.stats.record(len(reqBytes), 0, lat)
		return nil, lat, &FaultError{Kind: FaultCorrupt, Op: "request", Err: err}
	}
	var resp wire.Message
	shed := false
	if l.admission != nil {
		if aerr := l.admission.Acquire(ctx); aerr != nil {
			if !IsOverloaded(aerr) {
				// Gave up while queued: the request never executed.
				l.stats.record(len(reqBytes), 0, lat)
				return nil, lat, aerr
			}
			// Shed: the server answers with the typed overload frame,
			// which travels the response leg like any other reply.
			shed = true
			resp = &wire.OverloadResponse{
				RetryAfterMillis: retryAfterToMillis(l.admission.RetryAfter()),
			}
		} else {
			resp = l.handler.Handle(req)
			l.admission.Release()
		}
	} else {
		resp = l.handler.Handle(req)
	}
	if resp == nil {
		// The "process" died mid-request (crash injection): the caller's
		// connection just goes dead — a retryable transport fault, not a
		// reply.
		l.stats.record(len(reqBytes), 0, lat)
		return nil, lat, &FaultError{Kind: FaultDisconnect, Op: "response",
			Err: errors.New("netsim: peer died mid-request")}
	}
	if reqPlan.duplicate && !shed {
		// A retransmit the server cannot tell from a fresh request: the
		// handler runs again and the extra answer is discarded, exactly
		// what a duplicated datagram does to a stateless responder.
		_ = l.handler.Handle(req)
	}
	if l.admission != nil {
		// Time spent queued at the gate is real, not modeled: a caller
		// whose deadline expired while waiting must see a timeout, not a
		// reply it has already given up on.
		if cerr := ctx.Err(); cerr != nil {
			l.stats.record(len(reqBytes), 0, lat)
			return nil, lat, transportErr("roundtrip", cerr)
		}
	}

	// Response leg.
	respBytes, err := wire.Encode(resp)
	if err != nil {
		return nil, lat, err
	}
	respPlan := faults.plan(false)
	lat += respPlan.delay
	if respPlan.disconnect {
		l.stats.record(len(reqBytes), 0, lat)
		return nil, lat, &FaultError{Kind: FaultDisconnect, Op: "response"}
	}
	if respPlan.drop {
		l.stats.record(len(reqBytes), 0, lat)
		return nil, lat, &FaultError{Kind: FaultDrop, Op: "response"}
	}
	if respPlan.corrupt {
		respBytes = append([]byte(nil), respBytes...)
		faults.corruptFrame(respBytes)
	}
	resp2, err := wire.Decode(respBytes)
	if err != nil {
		l.stats.record(len(reqBytes), len(respBytes), lat)
		return nil, lat, &FaultError{Kind: FaultCorrupt, Op: "response", Err: err}
	}
	lat += l.link.RTT
	if l.link.BytesPerSecond > 0 {
		transfer := float64(len(reqBytes)+len(respBytes)) / l.link.BytesPerSecond
		lat += time.Duration(transfer * float64(time.Second))
	}
	if deadline, ok := ctx.Deadline(); ok {
		// Virtual time vs. the caller's budget: if the modeled latency of
		// this call exceeds the remaining real budget, the reply would
		// have arrived too late. The budget is read off the link's clock,
		// so injected skew shifts deadline decisions exactly as a skewed
		// host clock would.
		if remaining := deadline.Sub(l.now()); lat > remaining {
			l.stats.record(len(reqBytes), len(respBytes), lat)
			return nil, lat, &TransportError{Op: "roundtrip", Timeout: true, Err: context.DeadlineExceeded}
		}
	}
	l.stats.record(len(reqBytes), len(respBytes), lat)
	return resp2, lat, nil
}

// Stats returns the link counters.
func (l *Loopback) Stats() StatsSnapshot {
	snap := l.stats.Snapshot()
	snap.Faults = l.faults.Load().snapshot()
	return snap
}

// Close is a no-op for the loopback transport.
func (l *Loopback) Close() error { return nil }
