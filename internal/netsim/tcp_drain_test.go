package netsim

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seccloud/internal/wire"
)

// drainCountHandler tallies every request that enters the handler — the
// server-side definition of "in flight" the drain contract protects.
type drainCountHandler struct {
	entered atomic.Int64
}

func (h *drainCountHandler) Handle(m wire.Message) wire.Message {
	h.entered.Add(1)
	return &wire.StoreResponse{OK: true}
}

// Satellite regression for the drain race: Shutdown under concurrent
// streamed rounds must (a) complete promptly — with the old
// check-then-arm ordering in serveConn, a conn could overwrite the drain
// deadline with a fresh full-length one and stall the drain for up to
// ReadTimeout — (b) drop zero in-flight requests (every round that
// entered the handler gets its response back to the client), and (c)
// leak no goroutines.
func TestTCPServerShutdownStreamedRoundsNoDropNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	handler := &drainCountHandler{}
	// The default (2-minute) ReadTimeout is the point: if drain depends on
	// read deadlines expiring naturally, this test times out.
	srv, err := NewTCPServer("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}

	const streams = 8
	var (
		wg        sync.WaitGroup
		succeeded atomic.Int64
		stop      = make(chan struct{})
	)
	for i := 0; i < streams; i++ {
		c, err := DialTCP(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c *TCPClient) {
			defer wg.Done()
			defer func() { _ = c.Close() }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := c.RoundTrip(&wire.ChallengeRequest{JobID: "drain"})
				if err != nil {
					// The conn died at the read stage during drain: the
					// request never entered the handler, and the error is
					// a classifiable transport fault — never a success
					// that went missing.
					if !IsRetryable(err) && !IsTimeout(err) {
						t.Errorf("drain produced a non-transport error: %v", err)
					}
					return
				}
				succeeded.Add(1)
			}
		}(c)
	}

	// Let the streams reach a steady request/response rhythm so Shutdown
	// lands in every phase of the serve loop across the 8 conns.
	for handler.entered.Load() < streams*4 {
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not drain gracefully: %v", err)
	}
	if drainTook := time.Since(start); drainTook > 10*time.Second {
		t.Fatalf("graceful drain of idle-or-active conns took %v; drain deadline race is back", drainTook)
	}
	close(stop)
	wg.Wait()

	// Zero dropped in-flight: the server can have entered at most one
	// request per stream that the client never got an answer for — and
	// with graceful drain, even that must not happen: every entered
	// request's response write completes before its conn closes.
	entered, ok := handler.entered.Load(), succeeded.Load()
	if entered != ok {
		t.Fatalf("drain dropped in-flight requests: handler entered %d, clients completed %d", entered, ok)
	}

	// New dials after drain must be refused, not accepted and wedged.
	if _, err := DialTCP(srv.Addr()); err == nil {
		t.Fatal("dial succeeded after Shutdown")
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	stacks := string(buf[:n])
	if strings.Contains(stacks, "netsim.(*TCPServer)") {
		t.Fatalf("leaked server goroutines after Shutdown:\n%s", stacks)
	}
}

// A conn parked mid-read when Shutdown fires must wake immediately even
// though its read deadline was freshly re-armed moments earlier.
func TestTCPServerShutdownWakesFreshlyArmedReader(t *testing.T) {
	srv, err := NewTCPServerConfig("127.0.0.1:0", echoHandler{}, TCPServerConfig{
		ReadTimeout: time.Hour, // drain must not wait for this
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// One round trip parks the server-side reader with a fresh 1h deadline.
	if _, err := c.RoundTrip(&wire.StoreResponse{OK: true}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("drain of one idle conn took %v", took)
	}
	if _, err := c.RoundTrip(&wire.StoreResponse{OK: true}); err == nil {
		t.Fatal("round trip succeeded on a drained server")
	} else if !IsRetryable(err) && !IsTimeout(err) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("post-drain round trip error is not a classifiable transport fault: %v", err)
	}
}
