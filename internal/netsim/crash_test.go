package netsim

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"seccloud/internal/wire"
)

func TestRestartableServerKillRestartRedial(t *testing.T) {
	var incarnations atomic.Int32
	rs, err := NewRestartableServer("127.0.0.1:0", func() (Handler, error) {
		incarnations.Add(1)
		return echoHandler{}, nil
	}, TCPServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rs.Close() }()

	client, err := DialTCPConfig(rs.Addr(), TCPClientConfig{
		Timeout: 5 * time.Second,
		Redial:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	if _, err := client.RoundTrip(&wire.StoreResponse{OK: true}); err != nil {
		t.Fatalf("round trip before crash: %v", err)
	}

	// SIGKILL the incarnation: the next call must fail retryably — the
	// client must not be told anything that looks like a protocol verdict.
	rs.KillAndWait()
	if _, err := client.RoundTrip(&wire.StoreResponse{OK: true}); err == nil {
		t.Fatal("round trip against a dead server succeeded")
	} else if !IsRetryable(err) {
		t.Fatalf("dead-server error is not retryable: %v", err)
	}

	// Restart on the same address: the factory runs again (recovery), and
	// the redialing client reconnects transparently.
	if err := rs.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if _, err := client.RoundTrip(&wire.StoreResponse{OK: true}); err != nil {
		t.Fatalf("round trip after restart: %v", err)
	}
	if got := incarnations.Load(); got != 2 {
		t.Fatalf("factory ran %d times, want 2", got)
	}
	if rs.Crashes() != 1 || rs.Restarts() != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", rs.Crashes(), rs.Restarts())
	}
}

// killOnChallenge dies "inside" the request handler, the way a
// store.Crasher hook does: it kills the server it is serving under and
// returns nil (no response ever leaves the dying process).
type killOnChallenge struct {
	rs    **RestartableServer
	armed atomic.Bool
}

func (h *killOnChallenge) Handle(m wire.Message) wire.Message {
	if _, ok := m.(*wire.ChallengeRequest); ok && h.armed.CompareAndSwap(true, false) {
		(*h.rs).Kill()
		return nil
	}
	return &wire.StoreResponse{OK: true, Error: m.Kind()}
}

func TestRestartableServerInHandlerKill(t *testing.T) {
	var rs *RestartableServer
	h := &killOnChallenge{rs: &rs}
	var err error
	rs, err = NewRestartableServer("127.0.0.1:0", func() (Handler, error) {
		return h, nil
	}, TCPServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rs.Close() }()

	client, err := DialTCPConfig(rs.Addr(), TCPClientConfig{
		Timeout: 5 * time.Second,
		Redial:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	h.armed.Store(true)
	// Kill fires on the handler's own goroutine; if Kill joined the serving
	// goroutines synchronously this would deadlock, not just fail.
	if _, err := client.RoundTrip(&wire.ChallengeRequest{JobID: "j"}); err == nil {
		t.Fatal("round trip survived an in-handler crash")
	} else if !IsRetryable(err) {
		t.Fatalf("in-handler crash error is not retryable: %v", err)
	}
	if err := rs.Restart(); err != nil {
		t.Fatalf("Restart after in-handler kill: %v", err)
	}
	if _, err := client.RoundTrip(&wire.ChallengeRequest{JobID: "j"}); err != nil {
		t.Fatalf("round trip after restart: %v", err)
	}
}

// slowAuditHandler simulates a server verifying an audit challenge: it
// signals entry, works for a while, then answers.
type slowAuditHandler struct {
	entered chan struct{}
	work    time.Duration
}

func (h *slowAuditHandler) Handle(m wire.Message) wire.Message {
	if req, ok := m.(*wire.ChallengeRequest); ok {
		select {
		case h.entered <- struct{}{}:
		default:
		}
		time.Sleep(h.work)
		return &wire.ChallengeResponse{JobID: req.JobID}
	}
	return &wire.StoreResponse{OK: true}
}

func TestTCPServerShutdownDrainsInFlightAuditRound(t *testing.T) {
	before := runtime.NumGoroutine()

	h := &slowAuditHandler{entered: make(chan struct{}, 1), work: 300 * time.Millisecond}
	srv, err := NewTCPServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}

	client, err := DialTCPConfig(srv.Addr(), TCPClientConfig{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	// Launch an audit challenge round trip, then shut the server down while
	// the challenge is mid-verification.
	type result struct {
		resp wire.Message
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := client.RoundTrip(&wire.ChallengeRequest{JobID: "drain-job"})
		done <- result{resp, err}
	}()
	select {
	case <-h.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("challenge never reached the handler")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The in-flight audit round must have completed, not been cut off:
	// graceful drain means the DA records a verdict for this round, not a
	// network fault.
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight challenge failed during drain: %v", r.err)
	}
	ch, ok := r.resp.(*wire.ChallengeResponse)
	if !ok || ch.JobID != "drain-job" {
		t.Fatalf("unexpected drain response: %#v", r.resp)
	}

	// After the drain the server is gone: the next round trip surfaces a
	// retryable transport error (the DA counts it as a network fault and
	// moves on — it never accuses).
	if _, err := client.RoundTrip(&wire.ChallengeRequest{JobID: "drain-job"}); err == nil {
		t.Fatal("round trip after Shutdown succeeded")
	} else if !IsRetryable(err) {
		t.Fatalf("post-shutdown error is not retryable: %v", err)
	}
	_ = client.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	stacks := string(buf[:n])
	if strings.Contains(stacks, "netsim.(*TCPServer)") {
		t.Fatalf("leaked server goroutines after drained Shutdown:\n%s", stacks)
	}
}
