package netsim

import (
	"sync"

	"seccloud/internal/wire"
)

// SwappableHandler is one server slot's stable network identity: a crash
// or restart swaps the Handler behind it while every client keeps its
// existing connection object, exactly as a process restart behind a
// fixed address looks to the rest of the fleet. Both the epoch simulator
// and the chaos harness model restarts through it.
type SwappableHandler struct {
	mu sync.Mutex
	h  Handler
}

// NewSwappableHandler wraps h as the slot's first incarnation.
func NewSwappableHandler(h Handler) *SwappableHandler {
	return &SwappableHandler{h: h}
}

// Handle forwards to the current incarnation.
func (s *SwappableHandler) Handle(m wire.Message) wire.Message {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	return h.Handle(m)
}

// Swap replaces the incarnation behind the identity (e.g. with a fresh
// process recovered from the WAL).
func (s *SwappableHandler) Swap(h Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// Current returns the incarnation currently behind the identity.
func (s *SwappableHandler) Current() Handler {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h
}
