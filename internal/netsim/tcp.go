package netsim

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"seccloud/internal/wire"
)

// TCPServer serves a Handler over real sockets with the wire framing.
// Connections are handled concurrently; Close stops the listener and waits
// for in-flight connections to drain.
type TCPServer struct {
	handler  Handler
	listener net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewTCPServer starts listening on addr (e.g. "127.0.0.1:0") and serving
// handler in background goroutines.
func NewTCPServer(addr string, handler Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: listen %s: %w", addr, err)
	}
	s := &TCPServer{
		handler:  handler,
		listener: ln,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		req, _, err := wire.ReadMessage(conn)
		if err != nil {
			return // peer closed or protocol error; drop the connection
		}
		resp := s.handler.Handle(req)
		if _, err := wire.WriteMessage(conn, resp); err != nil {
			return
		}
	}
}

// Close shuts the listener, closes live connections, and waits for the
// serving goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPClient is a Client over one TCP connection. Round trips are
// serialized with a mutex: the protocol is strictly request/response.
type TCPClient struct {
	mu     sync.Mutex
	conn   net.Conn
	stats  Stats
	closed bool
}

var _ Client = (*TCPClient)(nil)

// DialTCP connects to a TCPServer.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: dial %s: %w", addr, err)
	}
	return &TCPClient{conn: conn}, nil
}

// RoundTrip sends m and waits for the reply.
func (c *TCPClient) RoundTrip(m wire.Message) (wire.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("netsim: client closed")
	}
	sent, err := wire.WriteMessage(c.conn, m)
	if err != nil {
		return nil, err
	}
	resp, recvd, err := wire.ReadMessage(c.conn)
	if err != nil {
		return nil, err
	}
	c.stats.record(sent, recvd, 0)
	return resp, nil
}

// Stats returns the link counters.
func (c *TCPClient) Stats() StatsSnapshot { return c.stats.Snapshot() }

// Close closes the underlying connection.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
