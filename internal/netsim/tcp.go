package netsim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"seccloud/internal/obs"
	"seccloud/internal/wire"
)

// TCPServerConfig shapes the socket server's robustness behaviour. The
// zero value picks conservative defaults.
type TCPServerConfig struct {
	// ReadTimeout bounds the wait for the next request on a connection;
	// a stalled or silent peer is disconnected after this long. Zero
	// means DefaultReadTimeout; negative disables the deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write. Zero means
	// DefaultWriteTimeout; negative disables the deadline.
	WriteTimeout time.Duration
	// MaxConns caps concurrently served connections; surplus dials are
	// answered with a typed overload frame and closed, so clients can
	// classify the refusal instead of seeing a silent drop. Zero means
	// unlimited.
	MaxConns int
	// Admission, when set, gates request execution: requests beyond the
	// gate's inflight and queue bounds receive a typed overload response.
	// Connections waiting at the gate serve nothing else meanwhile — the
	// strict request/response framing is the per-conn backpressure.
	Admission *Admission
}

// Default socket deadlines.
const (
	DefaultReadTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
)

func (c TCPServerConfig) readTimeout() time.Duration {
	if c.ReadTimeout == 0 {
		return DefaultReadTimeout
	}
	if c.ReadTimeout < 0 {
		return 0
	}
	return c.ReadTimeout
}

func (c TCPServerConfig) writeTimeout() time.Duration {
	if c.WriteTimeout == 0 {
		return DefaultWriteTimeout
	}
	if c.WriteTimeout < 0 {
		return 0
	}
	return c.WriteTimeout
}

// TCPServer serves a Handler over real sockets with the wire framing.
// Connections are handled concurrently under per-message read/write
// deadlines; Close tears connections down immediately, Shutdown drains
// in-flight requests first. Both join every per-connection goroutine
// before returning.
type TCPServer struct {
	handler  Handler
	listener net.Listener
	cfg      TCPServerConfig

	mu       sync.Mutex
	closed   bool
	draining bool
	conns    map[net.Conn]struct{}
	refused  int64
	wg       sync.WaitGroup
}

// NewTCPServer starts listening on addr (e.g. "127.0.0.1:0") and serving
// handler in background goroutines with default robustness settings.
func NewTCPServer(addr string, handler Handler) (*TCPServer, error) {
	return NewTCPServerConfig(addr, handler, TCPServerConfig{})
}

// NewTCPServerConfig is NewTCPServer with explicit robustness settings.
func NewTCPServerConfig(addr string, handler Handler, cfg TCPServerConfig) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: listen %s: %w", addr, err)
	}
	s := &TCPServer{
		handler:  handler,
		listener: ln,
		cfg:      cfg,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

// RefusedConns reports how many dials the MaxConns guard turned away.
func (s *TCPServer) RefusedConns() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refused
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.refused++
			s.wg.Add(1)
			s.mu.Unlock()
			go s.refuseConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// refuseConn answers a dial over the MaxConns cap with the typed
// overload frame before closing, so the client backs off (or fails over)
// instead of burning retries on what used to be a silent drop.
func (s *TCPServer) refuseConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() { _ = conn.Close() }()
	if wt := s.cfg.writeTimeout(); wt > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(wt))
	}
	_, _ = wire.WriteMessage(conn, &wire.OverloadResponse{RetryAfterMillis: s.retryAfterMillis()})
}

func (s *TCPServer) retryAfterMillis() int64 {
	if s.cfg.Admission != nil {
		return retryAfterToMillis(s.cfg.Admission.RetryAfter())
	}
	return 0
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	readTimeout := s.cfg.readTimeout()
	writeTimeout := s.cfg.writeTimeout()
	for {
		// Deadline first, stop-check second — this order is load-bearing.
		// Shutdown flips draining and then stamps an immediate read
		// deadline on every live conn; re-arming the deadline AFTER the
		// stop check opens a race where this loop passes the check, then
		// overwrites the drain deadline with a fresh full-length one and
		// parks in ReadMessage until it expires, stalling graceful drain
		// for up to ReadTimeout. With this order, whichever side writes
		// the deadline last, the loop either observes draining here or
		// wakes immediately from the expired read.
		if readTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(readTimeout))
		}
		if s.stopping() {
			return
		}
		req, _, err := wire.ReadMessage(conn)
		if err != nil {
			return // peer closed, stalled past deadline, or sent garbage
		}
		var resp wire.Message
		if gate := s.cfg.Admission; gate != nil {
			if aerr := gate.Acquire(context.Background()); aerr != nil {
				resp = &wire.OverloadResponse{RetryAfterMillis: s.retryAfterMillis()}
			} else {
				resp = s.handler.Handle(req)
				gate.Release()
			}
		} else {
			resp = s.handler.Handle(req)
		}
		if resp == nil {
			// Handler "process" died mid-request: drop the connection
			// without a reply, as a killed process would.
			return
		}
		if writeTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		}
		if _, err := wire.WriteMessage(conn, resp); err != nil {
			return
		}
	}
}

func (s *TCPServer) stopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed || s.draining
}

// Shutdown gracefully stops the server: it refuses new connections,
// unblocks idle readers, lets in-flight requests finish their response
// writes, and joins every goroutine. If ctx expires first, remaining
// connections are torn down hard (as Close does) before returning
// ctx.Err().
func (s *TCPServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	err := s.listener.Close()
	// Idle connections are parked in ReadMessage; an immediate read
	// deadline unblocks them. A connection mid-Handle is unaffected: its
	// response write has its own deadline and completes the drain.
	for conn := range s.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		return err
	case <-ctx.Done():
		s.mu.Lock()
		s.closed = true
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close shuts the listener, closes live connections, and waits for the
// serving goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPClientConfig shapes a TCP client's robustness behaviour.
type TCPClientConfig struct {
	// Timeout bounds each round trip when the caller's context carries no
	// deadline; zero means no per-call deadline.
	Timeout time.Duration
	// Redial re-establishes the connection on the next round trip after a
	// transport failure broke it.
	Redial bool
	// Faults injects deterministic client-side network faults.
	Faults FaultConfig
	// Obs attaches observability instruments (wall-clock latency
	// histogram, request and fault counters under transport="tcp"); nil
	// leaves the client uninstrumented with zero overhead.
	Obs *obs.Hub
}

// TCPClient is a Client over one TCP connection. Round trips are
// serialized with a mutex: the protocol is strictly request/response.
type TCPClient struct {
	addr string
	cfg  TCPClientConfig

	mu     sync.Mutex
	conn   net.Conn
	broken bool
	closed bool
	stats  Stats
	faults *faultInjector
	obs    *rpcObs
}

var _ Client = (*TCPClient)(nil)

// DialTCP connects to a TCPServer with default client settings.
func DialTCP(addr string) (*TCPClient, error) {
	return DialTCPConfig(addr, TCPClientConfig{})
}

// DialTCPConfig is DialTCP with explicit robustness settings.
func DialTCPConfig(addr string, cfg TCPClientConfig) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, &TransportError{Op: "dial", Err: fmt.Errorf("netsim: dial %s: %w", addr, err)}
	}
	return &TCPClient{
		addr:   addr,
		cfg:    cfg,
		conn:   conn,
		faults: newFaultInjector(cfg.Faults),
		obs:    newRPCObs(cfg.Obs, "tcp"),
	}, nil
}

// RoundTrip sends m and waits for the reply.
func (c *TCPClient) RoundTrip(m wire.Message) (wire.Message, error) {
	return c.RoundTripContext(context.Background(), m)
}

// RoundTripContext sends m and waits for the reply under the context's
// deadline (or the configured Timeout). Transport failures mark the
// connection broken; with Redial enabled the next call reconnects.
func (c *TCPClient) RoundTripContext(ctx context.Context, m wire.Message) (wire.Message, error) {
	if c.obs == nil {
		return c.roundTripContext(ctx, m)
	}
	start := time.Now()
	resp, err := c.roundTripContext(ctx, m)
	c.obs.observe(time.Since(start), err)
	return resp, err
}

func (c *TCPClient) roundTripContext(ctx context.Context, m wire.Message) (wire.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("netsim: client closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, transportErr("roundtrip", err)
	}
	if c.broken {
		if !c.cfg.Redial {
			return nil, &TransportError{Op: "roundtrip", Err: errors.New("netsim: connection broken (redial disabled)")}
		}
		conn, err := net.Dial("tcp", c.addr)
		if err != nil {
			return nil, &TransportError{Op: "dial", Err: err}
		}
		c.conn = conn
		c.broken = false
	}

	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline && c.cfg.Timeout > 0 {
		deadline, hasDeadline = time.Now().Add(c.cfg.Timeout), true
	}
	if hasDeadline {
		_ = c.conn.SetDeadline(deadline)
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}

	plan := c.faults.plan(true)
	if plan.disconnect {
		c.breakConn()
		return nil, &FaultError{Kind: FaultDisconnect, Op: "request"}
	}
	if plan.drop {
		// A lost request: nothing reaches the server, the caller's wait
		// is the timeout it would have burned on a silent socket.
		return nil, &FaultError{Kind: FaultDrop, Op: "request"}
	}
	if plan.delay > 0 {
		t := time.NewTimer(plan.delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, transportErr("roundtrip", ctx.Err())
		case <-t.C:
		}
	}

	data, err := wire.Encode(m)
	if err != nil {
		return nil, err
	}
	if plan.corrupt {
		data = append([]byte(nil), data...)
		c.faults.corruptFrame(data)
	}
	writes := 1
	if plan.duplicate {
		writes = 2
	}
	var sent int
	for i := 0; i < writes; i++ {
		n, err := wire.WriteFrame(c.conn, data)
		sent += n
		if err != nil {
			c.breakConn()
			return nil, transportErr("write", err)
		}
	}

	resp, recvd, err := wire.ReadMessage(c.conn)
	if err != nil {
		// Includes the corrupted-request case: the server fails to decode
		// and drops the connection, so the read returns an error.
		c.breakConn()
		if plan.corrupt {
			return nil, &FaultError{Kind: FaultCorrupt, Op: "request", Err: err}
		}
		return nil, transportErr("read", err)
	}
	if plan.duplicate {
		// Drain the duplicate's response to keep the stream in sync.
		if _, _, err := wire.ReadMessage(c.conn); err != nil {
			c.breakConn()
			return nil, transportErr("read", err)
		}
	}
	c.stats.record(sent, recvd, 0)
	// A typed shed surfaces as a non-retryable *OverloadedError, never as
	// a normal reply.
	return overloadResponse("roundtrip", resp)
}

// breakConn closes the live connection and marks it for redial. Callers
// must hold c.mu.
func (c *TCPClient) breakConn() {
	if c.conn != nil {
		_ = c.conn.Close()
	}
	c.broken = true
}

// Stats returns the link counters.
func (c *TCPClient) Stats() StatsSnapshot {
	snap := c.stats.Snapshot()
	snap.Faults = c.faults.snapshot()
	return snap
}

// Close closes the underlying connection.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.broken {
		return nil
	}
	return c.conn.Close()
}
