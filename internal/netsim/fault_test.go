package netsim

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"seccloud/internal/wire"
)

func TestFaultInjectorDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 99, DropRate: 0.3, CorruptRate: 0.2, DuplicateRate: 0.1}
	run := func() []legPlan {
		inj := newFaultInjector(cfg)
		plans := make([]legPlan, 200)
		for i := range plans {
			plans[i] = inj.plan(true)
		}
		return plans
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan %d differs across runs with the same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFaultInjectorInertConfig(t *testing.T) {
	if inj := newFaultInjector(FaultConfig{Seed: 5}); inj != nil {
		t.Fatal("inert config built an injector")
	}
	// A nil injector must be safe to use everywhere.
	var inj *faultInjector
	if p := inj.plan(true); p != (legPlan{}) {
		t.Fatalf("nil injector planned a fault: %+v", p)
	}
	if c := inj.snapshot(); c.Total() != 0 {
		t.Fatalf("nil injector has counts: %+v", c)
	}
}

func TestFaultInjectorRates(t *testing.T) {
	inj := newFaultInjector(FaultConfig{Seed: 3, DropRate: 0.25})
	const n = 4000
	for i := 0; i < n; i++ {
		inj.plan(true)
	}
	drops := inj.snapshot().Drops
	// 4000 Bernoulli(0.25) trials: expect ~1000, allow a generous band.
	if drops < 800 || drops > 1200 {
		t.Fatalf("drop count %d far from expected ~1000", drops)
	}
}

func TestLoopbackDropFault(t *testing.T) {
	l := NewLoopback(echoHandler{}, LinkConfig{}).WithFaults(FaultConfig{
		Seed: 11, DropRate: 1,
	})
	_, err := l.RoundTrip(&wire.StoreResponse{OK: true})
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != FaultDrop {
		t.Fatalf("want drop FaultError, got %v", err)
	}
	if !IsRetryable(err) {
		t.Fatal("drop fault must be retryable")
	}
	if l.Stats().Faults.Drops == 0 {
		t.Fatal("drop not counted in stats")
	}
}

func TestLoopbackCorruptFault(t *testing.T) {
	l := NewLoopback(echoHandler{}, LinkConfig{}).WithFaults(FaultConfig{
		Seed: 11, CorruptRate: 1,
	})
	_, err := l.RoundTrip(&wire.StoreResponse{OK: true})
	if err == nil {
		t.Fatal("corrupted frame round-tripped cleanly")
	}
	if !IsRetryable(err) {
		t.Fatalf("corruption should be retryable, got %v", err)
	}
	if l.Stats().Faults.Corruptions == 0 {
		t.Fatal("corruption not counted in stats")
	}
}

func TestLoopbackDuplicateFault(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	h := HandlerFunc(func(m wire.Message) wire.Message {
		mu.Lock()
		calls++
		mu.Unlock()
		return &wire.StoreResponse{OK: true}
	})
	l := NewLoopback(h, LinkConfig{}).WithFaults(FaultConfig{
		Seed: 11, DuplicateRate: 1,
	})
	if _, err := l.RoundTrip(&wire.StoreResponse{OK: true}); err != nil {
		t.Fatalf("duplicate should still deliver: %v", err)
	}
	if calls != 2 {
		t.Fatalf("handler saw %d calls, want 2 (original + duplicate)", calls)
	}
	if l.Stats().Faults.Duplicates != 1 {
		t.Fatalf("duplicates counted %d, want 1", l.Stats().Faults.Duplicates)
	}
}

func TestLoopbackDelayFaultTriggersDeadline(t *testing.T) {
	l := NewLoopback(echoHandler{}, LinkConfig{}).WithFaults(FaultConfig{
		Seed: 11, DelayRate: 1, Delay: time.Hour,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := l.RoundTripContext(ctx, &wire.StoreResponse{OK: true})
	if !IsTimeout(err) {
		t.Fatalf("want timeout error under modeled hour-long delay, got %v", err)
	}
	// The delay is modeled against the virtual clock; the call itself must
	// return promptly rather than really sleeping an hour.
	if time.Since(start) > 5*time.Second {
		t.Fatal("loopback really slept instead of modeling the delay")
	}
}

func TestLoopbackFaultFreePathUnchanged(t *testing.T) {
	l := NewLoopback(echoHandler{}, LinkConfig{}).WithFaults(FaultConfig{})
	for i := 0; i < 20; i++ {
		if _, err := l.RoundTrip(&wire.StoreResponse{OK: true}); err != nil {
			t.Fatalf("fault-free config injected a fault: %v", err)
		}
	}
	if l.Stats().Faults.Total() != 0 {
		t.Fatalf("fault counts nonzero: %+v", l.Stats().Faults)
	}
}

func TestLoopbackConcurrentStatsAndRoundTrip(t *testing.T) {
	l := NewLoopback(echoHandler{}, LinkConfig{RTT: time.Microsecond}).WithFaults(FaultConfig{
		Seed: 21, DropRate: 0.2, CorruptRate: 0.1, DuplicateRate: 0.1,
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, _ = l.RoundTrip(&wire.StoreResponse{OK: true})
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = l.Stats()
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.Calls+st.Faults.Drops == 0 {
		t.Fatal("no activity recorded")
	}
}

func TestTCPClientFaultsAndRedial(t *testing.T) {
	srv, err := NewTCPServer("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	client, err := DialTCPConfig(srv.Addr(), TCPClientConfig{
		Timeout: 5 * time.Second,
		Redial:  true,
		Faults:  FaultConfig{Seed: 17, DropRate: 0.2, CorruptRate: 0.1, DisconnectRate: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	ok, faults := 0, 0
	for i := 0; i < 60; i++ {
		_, err := client.RoundTrip(&wire.StoreResponse{OK: true})
		switch {
		case err == nil:
			ok++
		case IsRetryable(err):
			faults++
		default:
			t.Fatalf("round trip %d: non-retryable error %v", i, err)
		}
	}
	if ok == 0 || faults == 0 {
		t.Fatalf("want a mix of successes and faults, got ok=%d faults=%d", ok, faults)
	}
	if client.Stats().Faults.Total() == 0 {
		t.Fatal("fault counters empty")
	}
}

func TestTCPClientRetryClientOverFaultyLink(t *testing.T) {
	srv, err := NewTCPServer("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	inner, err := DialTCPConfig(srv.Addr(), TCPClientConfig{
		Timeout: 5 * time.Second,
		Redial:  true,
		Faults:  FaultConfig{Seed: 29, DropRate: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRetrier(1)
	r.MaxAttempts = 10
	r.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	client := NewRetryClient(inner, r)
	defer func() { _ = client.Close() }()

	for i := 0; i < 30; i++ {
		if _, err := client.RoundTrip(&wire.ChallengeRequest{JobID: "j"}); err != nil {
			t.Fatalf("retrying client failed over 30%% lossy TCP link: %v", err)
		}
	}
	if inner.Stats().Faults.Drops == 0 {
		t.Fatal("no drops injected; test is vacuous")
	}
}

func TestTCPServerGracefulShutdownNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, err := NewTCPServer("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	// A few clients, some of which go idle mid-session so their server-side
	// readers are parked in ReadMessage when Shutdown fires.
	clients := make([]*TCPClient, 4)
	for i := range clients {
		c, err := DialTCP(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		if _, err := c.RoundTrip(&wire.StoreResponse{OK: true}); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, c := range clients {
		_ = c.Close()
	}

	// Goroutine counts are noisy; poll until the server's goroutines are
	// gone or the deadline proves a leak.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	stacks := string(buf[:n])
	if strings.Contains(stacks, "netsim.(*TCPServer)") {
		t.Fatalf("leaked server goroutines after Shutdown:\n%s", stacks)
	}
}

func TestTCPServerShutdownIdempotentWithClose(t *testing.T) {
	srv, err := NewTCPServer("127.0.0.1:0", echoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
}

func TestTCPServerMaxConns(t *testing.T) {
	srv, err := NewTCPServerConfig("127.0.0.1:0", echoHandler{}, TCPServerConfig{MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	c1, err := DialTCPConfig(srv.Addr(), TCPClientConfig{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c1.Close() }()
	if _, err := c1.RoundTrip(&wire.StoreResponse{OK: true}); err != nil {
		t.Fatalf("first client should be served: %v", err)
	}

	c2, err := DialTCPConfig(srv.Addr(), TCPClientConfig{Timeout: 2 * time.Second})
	if err != nil {
		// Dial itself may fail if the refusal lands fast enough; that is
		// also a correct rejection.
		return
	}
	defer func() { _ = c2.Close() }()
	if _, err := c2.RoundTrip(&wire.StoreResponse{OK: true}); err == nil {
		t.Fatal("second client served despite MaxConns=1")
	}
	// Poll: the refusal is recorded by the accept loop asynchronously.
	deadline := time.Now().Add(2 * time.Second)
	for srv.RefusedConns() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.RefusedConns() == 0 {
		t.Fatal("refused connection not counted")
	}
}

func TestTCPServerReadTimeoutDisconnectsStalledPeer(t *testing.T) {
	srv, err := NewTCPServerConfig("127.0.0.1:0", echoHandler{}, TCPServerConfig{
		ReadTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	client, err := DialTCPConfig(srv.Addr(), TCPClientConfig{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	if _, err := client.RoundTrip(&wire.StoreResponse{OK: true}); err != nil {
		t.Fatal(err)
	}
	// Stall past the server's read deadline; the server must hang up, so
	// the next round trip fails at the transport layer.
	time.Sleep(150 * time.Millisecond)
	if _, err := client.RoundTrip(&wire.StoreResponse{OK: true}); err == nil {
		t.Fatal("server kept a stalled connection alive past ReadTimeout")
	} else if !IsRetryable(err) {
		t.Fatalf("disconnect should surface as retryable transport error, got %v", err)
	}
}

func TestFaultKindStrings(t *testing.T) {
	kinds := map[FaultKind]string{
		FaultDrop:       "drop",
		FaultDelay:      "delay",
		FaultDuplicate:  "duplicate",
		FaultCorrupt:    "corrupt",
		FaultDisconnect: "disconnect",
		FaultKind(42):   "fault(42)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("FaultKind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
