// Network-failure adversary. CheatPolicy (internal/core) models Byzantine
// *computation* faults; FaultConfig is its transport-layer twin: a
// deterministic, seeded injector that drops, delays, duplicates, corrupts
// and disconnects individual messages. The two together let experiments
// separate "the server is cheating" from "the network is lossy" — the
// distinction the DA's evidence trail must preserve.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// FaultKind labels one injected fault.
type FaultKind int

// The injectable fault classes.
const (
	// FaultDrop loses the message entirely (the peer never sees it).
	FaultDrop FaultKind = iota + 1
	// FaultDelay adds extra latency to the message.
	FaultDelay
	// FaultDuplicate delivers the message twice (a retransmit the peer
	// cannot distinguish from a fresh request).
	FaultDuplicate
	// FaultCorrupt flips bytes in the encoded frame.
	FaultCorrupt
	// FaultDisconnect tears the connection down mid-exchange.
	FaultDisconnect
	// FaultPartition blocks the message at a network partition: the two
	// endpoints are in groups that currently cannot reach each other in
	// this direction (partitions are directional; see Partition).
	FaultPartition
)

// String renders the fault class.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultCorrupt:
		return "corrupt"
	case FaultDisconnect:
		return "disconnect"
	case FaultPartition:
		return "partition"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FaultError reports a round trip lost to an injected (or real) network
// fault. It is retryable: the failure says nothing about the peer's
// honesty, only about the link.
type FaultError struct {
	// Kind is the fault class.
	Kind FaultKind
	// Op names the message leg ("request", "response", …).
	Op string
	// Err is the underlying error, if the fault surfaced through one.
	Err error
}

// Error implements error.
func (e *FaultError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("netsim: %s fault on %s: %v", e.Kind, e.Op, e.Err)
	}
	return fmt.Sprintf("netsim: %s fault on %s", e.Kind, e.Op)
}

// Unwrap exposes the underlying error.
func (e *FaultError) Unwrap() error { return e.Err }

// FaultConfig parameterizes the injector. All rates are probabilities in
// [0, 1] evaluated independently per message leg; the zero value injects
// nothing. Seed makes every decision deterministic, so a failing run
// replays exactly.
type FaultConfig struct {
	// Seed drives the injector's PRNG; 0 means seed 1 (still deterministic).
	Seed int64
	// DropRate loses a message leg entirely.
	DropRate float64
	// DelayRate adds Delay to a message leg's latency.
	DelayRate float64
	// Delay is the extra latency charged per delayed leg.
	Delay time.Duration
	// DuplicateRate delivers a request leg twice.
	DuplicateRate float64
	// CorruptRate flips a byte in the encoded frame.
	CorruptRate float64
	// DisconnectRate tears down the connection on a leg.
	DisconnectRate float64
}

// enabled reports whether any fault can fire.
func (fc FaultConfig) enabled() bool {
	return fc.DropRate > 0 || fc.DelayRate > 0 || fc.DuplicateRate > 0 ||
		fc.CorruptRate > 0 || fc.DisconnectRate > 0
}

// FaultCounts tallies injected faults by class.
type FaultCounts struct {
	Drops       int64
	Delays      int64
	Duplicates  int64
	Corruptions int64
	Disconnects int64
}

// Total sums all injected faults.
func (c FaultCounts) Total() int64 {
	return c.Drops + c.Delays + c.Duplicates + c.Corruptions + c.Disconnects
}

// legPlan is the injector's decision for one message leg.
type legPlan struct {
	drop       bool
	delay      time.Duration
	duplicate  bool
	corrupt    bool
	disconnect bool
}

// faultInjector applies a FaultConfig with a private, mutex-guarded PRNG
// so concurrent round trips stay deterministic in aggregate.
type faultInjector struct {
	cfg FaultConfig

	mu     sync.Mutex
	rng    *rand.Rand
	counts FaultCounts
}

// newFaultInjector builds an injector; nil when the config is inert so
// the fault-free fast path stays allocation- and lock-free.
func newFaultInjector(cfg FaultConfig) *faultInjector {
	if !cfg.enabled() {
		return nil
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &faultInjector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// plan draws the fault decisions for one leg. allowDuplicate limits
// duplication to request legs (a duplicated response has no observer).
func (f *faultInjector) plan(allowDuplicate bool) legPlan {
	if f == nil {
		return legPlan{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var p legPlan
	if f.cfg.DisconnectRate > 0 && f.rng.Float64() < f.cfg.DisconnectRate {
		p.disconnect = true
		f.counts.Disconnects++
		return p
	}
	if f.cfg.DropRate > 0 && f.rng.Float64() < f.cfg.DropRate {
		p.drop = true
		f.counts.Drops++
		return p
	}
	if f.cfg.CorruptRate > 0 && f.rng.Float64() < f.cfg.CorruptRate {
		p.corrupt = true
		f.counts.Corruptions++
	}
	if allowDuplicate && f.cfg.DuplicateRate > 0 && f.rng.Float64() < f.cfg.DuplicateRate {
		p.duplicate = true
		f.counts.Duplicates++
	}
	if f.cfg.DelayRate > 0 && f.rng.Float64() < f.cfg.DelayRate {
		p.delay = f.cfg.Delay
		f.counts.Delays++
	}
	return p
}

// corruptFrame flips one byte of data in place at a PRNG-chosen offset.
func (f *faultInjector) corruptFrame(data []byte) {
	if len(data) == 0 {
		return
	}
	f.mu.Lock()
	off := f.rng.Intn(len(data))
	f.mu.Unlock()
	data[off] ^= 0xff
}

// snapshot copies the fault counters.
func (f *faultInjector) snapshot() FaultCounts {
	if f == nil {
		return FaultCounts{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// Injector is the exported face of the fault injector, so transports
// outside this package (the daemon's pooled TLS client) can draw the same
// seeded fault decisions the in-process simulator and TCP shim use. A nil
// *Injector is valid and injects nothing.
type Injector struct {
	inner *faultInjector
}

// LegPlan is one leg's drawn fault decision, in injector order: a
// disconnect or drop preempts everything else; corrupt, duplicate and
// delay can stack.
type LegPlan struct {
	Drop       bool
	Delay      time.Duration
	Duplicate  bool
	Corrupt    bool
	Disconnect bool
}

// NewInjector builds a seeded injector from cfg; nil when cfg is inert,
// which every method tolerates.
func NewInjector(cfg FaultConfig) *Injector {
	inner := newFaultInjector(cfg)
	if inner == nil {
		return nil
	}
	return &Injector{inner: inner}
}

// Plan draws the fault decisions for one message leg. allowDuplicate
// limits duplication to request legs.
func (inj *Injector) Plan(allowDuplicate bool) LegPlan {
	if inj == nil {
		return LegPlan{}
	}
	p := inj.inner.plan(allowDuplicate)
	return LegPlan{
		Drop:       p.drop,
		Delay:      p.delay,
		Duplicate:  p.duplicate,
		Corrupt:    p.corrupt,
		Disconnect: p.disconnect,
	}
}

// Corrupt flips one byte of data in place at a PRNG-chosen offset.
func (inj *Injector) Corrupt(data []byte) {
	if inj == nil {
		return
	}
	inj.inner.corruptFrame(data)
}

// Snapshot copies the fault counters.
func (inj *Injector) Snapshot() FaultCounts {
	if inj == nil {
		return FaultCounts{}
	}
	return inj.inner.snapshot()
}
