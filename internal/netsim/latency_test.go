package netsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"seccloud/internal/wire"
)

func TestLatentClientSleepsRTT(t *testing.T) {
	inner := NewLoopback(echoHandler{}, LinkConfig{})
	defer inner.Close()
	c := NewLatentClient(inner, 40*time.Millisecond)

	start := time.Now()
	resp, err := c.RoundTrip(&wire.ChallengeRequest{JobID: "j"})
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := resp.(*wire.StoreResponse); !ok || !r.OK {
		t.Fatalf("echo came back as %T", resp)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 40ms", elapsed)
	}
}

func TestLatentClientHonorsContext(t *testing.T) {
	inner := NewLoopback(echoHandler{}, LinkConfig{})
	defer inner.Close()
	c := NewLatentClient(inner, 10*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.RoundTripContext(ctx, &wire.ChallengeRequest{JobID: "j"})
	if err == nil {
		t.Fatal("expected timeout error")
	}
	var te *TransportError
	if !errors.As(err, &te) || !te.Timeout {
		t.Fatalf("want timeout-classified TransportError, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, sleep was not interrupted", elapsed)
	}
}

func TestLatentClientOverlaps(t *testing.T) {
	inner := NewLoopback(echoHandler{}, LinkConfig{})
	defer inner.Close()
	c := NewLatentClient(inner, 50*time.Millisecond)

	const n = 4
	start := time.Now()
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := c.RoundTrip(&wire.ChallengeRequest{JobID: "j"})
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Sequential would take n*50ms; concurrent trips sleep independently.
	if elapsed := time.Since(start); elapsed > time.Duration(n)*50*time.Millisecond {
		t.Fatalf("%d concurrent trips took %v, did not overlap", n, elapsed)
	}
}
