package netsim

import (
	"context"
	"testing"
	"time"

	"seccloud/internal/obs"
	"seccloud/internal/wire"
)

// TestLoopbackObs checks the transport instruments: every round trip
// counts, modeled latency lands in the histogram, and injected faults
// are classified by kind.
func TestLoopbackObs(t *testing.T) {
	hub := obs.NewHub()
	echo := HandlerFunc(func(m wire.Message) wire.Message { return m })
	lb := NewLoopback(echo, LinkConfig{RTT: 20 * time.Millisecond}).WithObs(hub)

	msg := &wire.ChallengeRequest{JobID: "j", Indices: []uint64{1}}
	for i := 0; i < 3; i++ {
		if _, err := lb.RoundTrip(msg); err != nil {
			t.Fatal(err)
		}
	}

	s := hub.Registry().Snapshot()
	if v, _ := s.Value("rpc_requests_total", map[string]string{"transport": "loopback"}); v != 3 {
		t.Fatalf("rpc_requests_total = %v, want 3", v)
	}
	var hist obs.HistogramPoint
	for _, hp := range s.Histograms {
		if hp.Name == "rpc_latency_seconds" {
			hist = hp
		}
	}
	if hist.Count != 3 {
		t.Fatalf("latency observations = %d, want 3", hist.Count)
	}
	// 20ms modeled RTT must not land in the lowest (sub-millisecond)
	// bucket.
	if hist.Buckets[0].Count != 0 {
		t.Fatalf("20ms RTT counted into %s bucket", hist.Buckets[0].LE)
	}

	// Fault classification: a drop-everything link counts drops.
	lossy := NewLoopback(echo, LinkConfig{}).
		WithFaults(FaultConfig{DropRate: 1, Seed: 7}).
		WithObs(hub)
	if _, err := lossy.RoundTrip(msg); err == nil {
		t.Fatal("expected injected drop")
	}
	s = hub.Registry().Snapshot()
	if v := s.Total("rpc_faults_total", map[string]string{"fault": "drop"}); v != 1 {
		t.Fatalf("rpc_faults_total{fault=drop} = %v, want 1", v)
	}
}

func TestRetryHookCounts(t *testing.T) {
	hub := obs.NewHub()
	echo := HandlerFunc(func(m wire.Message) wire.Message { return m })
	flaky := NewLoopback(echo, LinkConfig{}).WithFaults(FaultConfig{DropRate: 1, Seed: 3})

	r := &Retrier{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond,
		Sleep:   func(context.Context, time.Duration) error { return nil },
		OnRetry: RetryHook(hub)}
	_, err := NewRetryClient(flaky, r).RoundTrip(&wire.ChallengeRequest{JobID: "j"})
	if err == nil {
		t.Fatal("expected exhaustion on an always-drop link")
	}
	if v := hub.Registry().Snapshot().Total("rpc_retries_total", nil); v < 1 {
		t.Fatalf("rpc_retries_total = %v, want >= 1", v)
	}

	if RetryHook(nil) != nil {
		t.Fatal("RetryHook(nil) must be nil so Retrier skips it")
	}
}
