package netsim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"seccloud/internal/wire"
)

// countingHandler records how many requests actually executed.
type countingHandler struct {
	served atomic.Int64
}

func (h *countingHandler) Handle(m wire.Message) wire.Message {
	h.served.Add(1)
	return &wire.ErrorResponse{Code: "ok"}
}

func ping() wire.Message { return &wire.ErrorResponse{Code: "ping"} }

func TestPartitionDirectional(t *testing.T) {
	h := &countingHandler{}
	part := NewPartition()
	c := PartitionClient(NewLoopback(h, LinkConfig{}), part, "da", "s0")

	if _, err := c.RoundTrip(ping()); err != nil {
		t.Fatalf("healed partition blocked traffic: %v", err)
	}

	// Request leg blocked: the server must never see the call.
	part.CutOneWay([]string{"da"}, []string{"s0"})
	before := h.served.Load()
	_, err := c.RoundTrip(ping())
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != FaultPartition {
		t.Fatalf("blocked request leg returned %v, want FaultPartition", err)
	}
	if !IsRetryable(err) {
		t.Fatal("partition fault must be retryable (it is not an accusation)")
	}
	if h.served.Load() != before {
		t.Fatal("server executed a request the partition should have eaten")
	}

	// Asymmetry: the reverse direction still flows.
	part.Heal()
	part.CutOneWay([]string{"s0"}, []string{"da"})
	before = h.served.Load()
	_, err = c.RoundTrip(ping())
	if !errors.As(err, &fe) || fe.Kind != FaultPartition || fe.Op != "response" {
		t.Fatalf("blocked response leg returned %v, want FaultPartition on response", err)
	}
	if h.served.Load() != before+1 {
		t.Fatal("blocked response leg must still execute the request server-side")
	}

	part.Heal()
	if _, err := c.RoundTrip(ping()); err != nil {
		t.Fatalf("healed partition still blocking: %v", err)
	}
	if part.Drops() != 2 {
		t.Fatalf("partition counted %d drops, want 2", part.Drops())
	}
}

func TestPartitionGroupCut(t *testing.T) {
	part := NewPartition()
	part.Cut([]string{"da", "csp"}, []string{"s1", "s2"})
	for _, pair := range [][2]string{{"da", "s1"}, {"da", "s2"}, {"csp", "s1"}, {"s2", "da"}, {"s1", "csp"}} {
		if !part.Blocked(pair[0], pair[1]) {
			t.Fatalf("%s → %s should be blocked", pair[0], pair[1])
		}
	}
	for _, pair := range [][2]string{{"da", "csp"}, {"s1", "s2"}} {
		if part.Blocked(pair[0], pair[1]) {
			t.Fatalf("%s → %s blocked but is on the same side", pair[0], pair[1])
		}
	}
}

func TestLoopbackSetFaultsAtRuntime(t *testing.T) {
	h := &countingHandler{}
	l := NewLoopback(h, LinkConfig{})
	if _, err := l.RoundTrip(ping()); err != nil {
		t.Fatalf("fault-free: %v", err)
	}
	l.SetFaults(FaultConfig{Seed: 7, DropRate: 1})
	if _, err := l.RoundTrip(ping()); err == nil {
		t.Fatal("DropRate=1 delivered a message")
	}
	dropped := l.Stats().Faults.Drops
	if dropped == 0 {
		t.Fatal("drop not counted")
	}
	// Healing must keep the historical counters.
	l.SetFaults(FaultConfig{})
	if _, err := l.RoundTrip(ping()); err != nil {
		t.Fatalf("healed link failed: %v", err)
	}
	if got := l.Stats().Faults.Drops; got != dropped {
		t.Fatalf("fault counters reset on heal: %d, want %d", got, dropped)
	}
}

func TestLoopbackClockSkewFeedsDeadline(t *testing.T) {
	h := &countingHandler{}
	clk := NewClock()
	l := NewLoopback(h, LinkConfig{RTT: 50 * time.Millisecond}).WithClock(clk)

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := l.RoundTripContext(ctx, ping()); err != nil {
		t.Fatalf("unskewed call failed: %v", err)
	}

	// A fast-by-2s clock believes the 1s budget is already spent: the
	// modeled 50ms reply "arrives too late".
	clk.SetSkew(2 * time.Second)
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	_, err := l.RoundTripContext(ctx2, ping())
	if err == nil {
		t.Fatal("skewed clock did not expire the deadline")
	}
	if !IsTimeout(err) {
		t.Fatalf("skew surfaced as %v, want a timeout", err)
	}

	clk.SetSkew(0)
	ctx3, cancel3 := context.WithTimeout(context.Background(), time.Second)
	defer cancel3()
	if _, err := l.RoundTripContext(ctx3, ping()); err != nil {
		t.Fatalf("restored clock still failing: %v", err)
	}
}
