package netsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"seccloud/internal/wire"
)

// Error taxonomy. A failed round trip is either *transport* (the message
// may never have reached an honest peer — retry it) or *terminal* (the
// peer answered and the answer is the problem — retrying cannot help, and
// for audits the failure is evidence, not noise).

// TransportError wraps a retryable transport-layer failure: socket
// errors, timeouts, injected faults, corrupted frames.
type TransportError struct {
	// Op names the failing operation ("dial", "write", "read", …).
	Op string
	// Timeout marks deadline-induced failures.
	Timeout bool
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *TransportError) Error() string {
	return fmt.Sprintf("netsim: transport %s: %v", e.Op, e.Err)
}

// Unwrap exposes the cause.
func (e *TransportError) Unwrap() error { return e.Err }

// transportErr wraps err unless it already carries taxonomy information.
func transportErr(op string, err error) error {
	var te *TransportError
	var fe *FaultError
	if errors.As(err, &te) || errors.As(err, &fe) {
		return err
	}
	timeout := errors.Is(err, context.DeadlineExceeded)
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		timeout = true
	}
	return &TransportError{Op: op, Timeout: timeout, Err: err}
}

// IsRetryable reports whether err is a transport-layer failure that a
// retry might fix. Terminal protocol errors (a decoded but invalid
// response, a refused challenge) are not retryable.
func IsRetryable(err error) bool {
	var te *TransportError
	if errors.As(err, &te) {
		return true
	}
	var fe *FaultError
	if errors.As(err, &fe) {
		return true
	}
	// Frame-level damage (truncated/corrupted bytes) means the link, not
	// the peer's logic, failed: a resend gets a fresh encoding.
	if errors.Is(err, wire.ErrCorrupt) || errors.Is(err, wire.ErrTruncated) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// IsTimeout reports whether err is a deadline-induced transport failure.
func IsTimeout(err error) bool {
	var te *TransportError
	if errors.As(err, &te) && te.Timeout {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// ExhaustedError reports that a Retrier ran out of attempts. It unwraps
// to the last attempt's error, so taxonomy checks (IsRetryable,
// IsTimeout) still classify the underlying failure.
type ExhaustedError struct {
	// Attempts is how many times the operation ran.
	Attempts int
	// BudgetDenied marks exhaustion caused by a drained RetryBudget
	// rather than by MaxAttempts: further attempts were available but the
	// shared budget refused to amplify load.
	BudgetDenied bool
	// Err is the final attempt's error.
	Err error
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	if e.BudgetDenied {
		return fmt.Sprintf("netsim: retry budget drained after %d attempts: %v", e.Attempts, e.Err)
	}
	return fmt.Sprintf("netsim: %d attempts exhausted: %v", e.Attempts, e.Err)
}

// Unwrap exposes the last error.
func (e *ExhaustedError) Unwrap() error { return e.Err }

// Retrier runs an operation with capped exponential backoff and
// deterministic jitter, retrying only transport-class failures. The zero
// value is not useful; use NewRetrier or fill the fields explicitly.
type Retrier struct {
	// MaxAttempts is the total number of tries (first attempt included);
	// values < 1 mean 1.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth.
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor; values < 1 mean 2.
	Multiplier float64
	// Jitter spreads each backoff by ±Jitter fraction (e.g. 0.2 → ±20%).
	Jitter float64
	// Seed drives the jitter PRNG (deterministic; 0 means seed 1).
	Seed int64
	// AttemptTimeout bounds each individual attempt's context; 0 leaves
	// the parent deadline in charge.
	AttemptTimeout time.Duration
	// Sleep waits between attempts; nil uses a real timer that honors ctx.
	// Tests inject a fake clock here — unit tests never time.Sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, if set, observes each scheduled retry.
	OnRetry func(attempt int, err error, backoff time.Duration)
	// Budget, if set, is consulted before every retry (never before the
	// first attempt). A drained budget stops the retry loop with a
	// budget-denied ExhaustedError even when MaxAttempts remain, and
	// successes refund it — the token bucket that keeps correlated
	// failures from multiplying offered load.
	Budget *RetryBudget

	jitterOnce sync.Once
	jitterMu   sync.Mutex
	jitterRng  *rand.Rand
}

// NewRetrier returns a Retrier with production defaults: 4 attempts,
// 50ms base backoff doubling to a 2s cap, ±20% jitter.
func NewRetrier(seed int64) *Retrier {
	return &Retrier{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		Jitter:      0.2,
		Seed:        seed,
	}
}

// WithBudget returns a copy of the retry policy drawing from budget b.
// The clone gets a fresh jitter stream (same seed) and leaves the original
// untouched, so one template Retrier can fan out per-audit budgets. The
// struct cannot be copied wholesale — it embeds a sync.Once and Mutex —
// hence the field-by-field clone.
func (r *Retrier) WithBudget(b *RetryBudget) *Retrier {
	if r == nil {
		return nil
	}
	return &Retrier{
		MaxAttempts:    r.MaxAttempts,
		BaseDelay:      r.BaseDelay,
		MaxDelay:       r.MaxDelay,
		Multiplier:     r.Multiplier,
		Jitter:         r.Jitter,
		Seed:           r.Seed,
		AttemptTimeout: r.AttemptTimeout,
		Sleep:          r.Sleep,
		OnRetry:        r.OnRetry,
		Budget:         b,
	}
}

// attempts normalizes MaxAttempts.
func (r *Retrier) attempts() int {
	if r == nil || r.MaxAttempts < 1 {
		return 1
	}
	return r.MaxAttempts
}

// backoff computes the jittered delay before attempt n+1 (n ≥ 1).
func (r *Retrier) backoff(n int) time.Duration {
	d := float64(r.BaseDelay)
	mult := r.Multiplier
	if mult < 1 {
		mult = 2
	}
	for i := 1; i < n; i++ {
		d *= mult
		if r.MaxDelay > 0 && d >= float64(r.MaxDelay) {
			d = float64(r.MaxDelay)
			break
		}
	}
	if r.MaxDelay > 0 && d > float64(r.MaxDelay) {
		d = float64(r.MaxDelay)
	}
	if r.Jitter > 0 && d > 0 {
		r.jitterOnce.Do(func() {
			seed := r.Seed
			if seed == 0 {
				seed = 1
			}
			r.jitterRng = rand.New(rand.NewSource(seed))
		})
		r.jitterMu.Lock()
		u := r.jitterRng.Float64()
		r.jitterMu.Unlock()
		d *= 1 + r.Jitter*(2*u-1)
	}
	return time.Duration(d)
}

// sleep waits d or returns early when ctx ends.
func (r *Retrier) sleep(ctx context.Context, d time.Duration) error {
	if r.Sleep != nil {
		return r.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op until it succeeds, returns a terminal error, exhausts
// MaxAttempts, or ctx ends. Exhaustion returns an *ExhaustedError
// wrapping the last transport failure.
func (r *Retrier) Do(ctx context.Context, op func(ctx context.Context) error) error {
	max := r.attempts()
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return &ExhaustedError{Attempts: attempt - 1, Err: lastErr}
			}
			return transportErr("retry", err)
		}
		attemptCtx, cancel := ctx, context.CancelFunc(nil)
		if r != nil && r.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, r.AttemptTimeout)
		}
		err := op(attemptCtx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			if r != nil {
				r.Budget.Credit()
			}
			return nil
		}
		if !IsRetryable(err) {
			return err
		}
		lastErr = err
		if attempt >= max {
			return &ExhaustedError{Attempts: attempt, Err: lastErr}
		}
		if r != nil && !r.Budget.Take() {
			return &ExhaustedError{Attempts: attempt, BudgetDenied: true, Err: lastErr}
		}
		backoff := r.backoff(attempt)
		if r.OnRetry != nil {
			r.OnRetry(attempt, err, backoff)
		}
		if serr := r.sleep(ctx, backoff); serr != nil {
			return &ExhaustedError{Attempts: attempt, Err: lastErr}
		}
	}
}

// RoundTrip performs client.RoundTripContext under the retry policy.
func (r *Retrier) RoundTrip(ctx context.Context, client Client, m wire.Message) (wire.Message, error) {
	var resp wire.Message
	err := r.Do(ctx, func(ctx context.Context) error {
		var err error
		resp, err = client.RoundTripContext(ctx, m)
		return err
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// RetryClient decorates a Client with a Retrier so transport-oblivious
// callers (the CSP scheduler, the user upload path) transparently survive
// lossy links. Terminal errors pass through untouched.
type RetryClient struct {
	inner   Client
	retrier *Retrier
}

var _ Client = (*RetryClient)(nil)

// NewRetryClient wraps inner; a nil retrier means NewRetrier(1).
func NewRetryClient(inner Client, retrier *Retrier) *RetryClient {
	if retrier == nil {
		retrier = NewRetrier(1)
	}
	return &RetryClient{inner: inner, retrier: retrier}
}

// RoundTrip retries inner.RoundTrip with a background context.
func (c *RetryClient) RoundTrip(m wire.Message) (wire.Message, error) {
	return c.RoundTripContext(context.Background(), m)
}

// RoundTripContext retries inner.RoundTripContext.
func (c *RetryClient) RoundTripContext(ctx context.Context, m wire.Message) (wire.Message, error) {
	return c.retrier.RoundTrip(ctx, c.inner, m)
}

// Stats returns the inner link's counters.
func (c *RetryClient) Stats() StatsSnapshot { return c.inner.Stats() }

// Close closes the inner client.
func (c *RetryClient) Close() error { return c.inner.Close() }
