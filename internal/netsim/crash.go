package netsim

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// HandlerFactory builds a server incarnation's handler. For a crash-safe
// SecCloud server this is "recover state from the WAL directory and
// return the rebuilt core.Server"; the factory runs on every restart, so
// recovery itself is exercised each time.
type HandlerFactory func() (Handler, error)

// RestartableServer orchestrates process-crash fault injection over the
// TCP transport: one logical server identity (one listen address) served
// by a sequence of incarnations. Kill tears the current incarnation down
// the way a SIGKILL would — live connections die mid-exchange, clients
// see retryable transport errors — and Restart brings up a fresh
// incarnation on the same address from the factory (i.e. from recovery).
// Clients dialed with Redial reconnect transparently on their next call.
type RestartableServer struct {
	factory HandlerFactory
	cfg     TCPServerConfig

	mu       sync.Mutex
	addr     string // concrete address, stable across incarnations
	srv      *TCPServer
	crashes  int
	restarts int
}

// NewRestartableServer starts the first incarnation on addr (use
// "127.0.0.1:0" to pick a free port; later incarnations reuse the
// concrete port).
func NewRestartableServer(addr string, factory HandlerFactory, cfg TCPServerConfig) (*RestartableServer, error) {
	h, err := factory()
	if err != nil {
		return nil, fmt.Errorf("netsim: building first incarnation: %w", err)
	}
	srv, err := NewTCPServerConfig(addr, h, cfg)
	if err != nil {
		return nil, err
	}
	return &RestartableServer{factory: factory, cfg: cfg, addr: srv.Addr(), srv: srv}, nil
}

// Addr returns the stable listen address.
func (r *RestartableServer) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addr
}

// Crashes reports how many times Kill has fired.
func (r *RestartableServer) Crashes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashes
}

// Restarts reports how many incarnations followed a Kill.
func (r *RestartableServer) Restarts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.restarts
}

// Kill hard-stops the current incarnation: the listener closes and every
// live connection is torn down immediately (no draining — a crash does
// not drain). Safe to call from a crash hook running inside a request
// handler: the teardown happens on a separate goroutine and Kill itself
// returns without waiting for the handler's own goroutine to unwind.
func (r *RestartableServer) Kill() {
	r.mu.Lock()
	srv := r.srv
	r.srv = nil
	if srv != nil {
		r.crashes++
	}
	r.mu.Unlock()
	if srv == nil {
		return
	}
	// Close joins every serving goroutine; when Kill is invoked from
	// within a handler (a store.Crasher OnCrash hook), joining would wait
	// on the calling goroutine itself — so run the teardown detached.
	go func() { _ = srv.Close() }()
}

// KillAndWait is Kill for out-of-band crashes (no handler on the stack):
// it blocks until every goroutine of the dead incarnation exited.
func (r *RestartableServer) KillAndWait() {
	r.mu.Lock()
	srv := r.srv
	r.srv = nil
	if srv != nil {
		r.crashes++
	}
	r.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
}

// Restart brings up a fresh incarnation on the same address, building its
// handler through the factory (recovery). It retries the bind briefly:
// after an in-handler Kill the old listener's close may still be in
// flight.
func (r *RestartableServer) Restart() error {
	r.mu.Lock()
	if r.srv != nil {
		r.mu.Unlock()
		return fmt.Errorf("netsim: restart of a live server")
	}
	addr := r.addr
	r.mu.Unlock()

	h, err := r.factory()
	if err != nil {
		return fmt.Errorf("netsim: recovering handler: %w", err)
	}
	var srv *TCPServer
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv, err = NewTCPServerConfig(addr, h, r.cfg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("netsim: rebinding %s: %w", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	r.mu.Lock()
	r.srv = srv
	r.restarts++
	r.mu.Unlock()
	return nil
}

// Shutdown gracefully stops the current incarnation (if any).
func (r *RestartableServer) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	srv := r.srv
	r.srv = nil
	r.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// Close stops the current incarnation (if any) for good.
func (r *RestartableServer) Close() error {
	r.mu.Lock()
	srv := r.srv
	r.srv = nil
	r.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
