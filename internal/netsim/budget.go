package netsim

import (
	"sync"

	"seccloud/internal/obs"
)

// RetryBudget is a token bucket shared by every Retrier working on one
// audit (or one client): each retry spends a token, each success refunds
// a fraction of one. When the bucket is empty further
// retries are denied, so a correlated failure — a dead replica, an
// overloaded fleet — cannot multiply offered load by MaxAttempts. The
// well-known shape: a 10% refund ratio caps steady-state retry traffic
// at ~10% of successes no matter how many callers share the bucket.
//
// Safe for concurrent use. A nil *RetryBudget never denies, so callers
// can thread an optional budget without nil checks.
type RetryBudget struct {
	mu       sync.Mutex
	tokens   float64
	capacity float64
	ratio    float64
	denied   uint64
	spent    uint64

	obsDenied *obs.Counter
}

// NewRetryBudget returns a bucket holding capacity tokens (minimum 1),
// refunding ratio tokens per success. A ratio of 0.1 is the conventional
// choice.
func NewRetryBudget(capacity, ratio float64) *RetryBudget {
	if capacity < 1 {
		capacity = 1
	}
	if ratio < 0 {
		ratio = 0
	}
	return &RetryBudget{tokens: capacity, capacity: capacity, ratio: ratio}
}

// WithObs counts denials into retry_budget_denied_total on h and returns
// b; a nil hub is a no-op.
func (b *RetryBudget) WithObs(h *obs.Hub) *RetryBudget {
	if h == nil || b == nil {
		return b
	}
	b.obsDenied = h.Counter("retry_budget_denied_total").With()
	return b
}

// Take spends one token; false means the budget is drained and the retry
// must not happen.
func (b *RetryBudget) Take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	if b.tokens < 1 {
		b.denied++
		b.mu.Unlock()
		if b.obsDenied != nil {
			b.obsDenied.Inc()
		}
		return false
	}
	b.tokens--
	b.spent++
	b.mu.Unlock()
	return true
}

// Credit refunds the success fraction, capped at capacity.
func (b *RetryBudget) Credit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
	b.mu.Unlock()
}

// Denied returns how many retries the budget has refused so far.
func (b *RetryBudget) Denied() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}

// Spent returns how many retry tokens have been consumed.
func (b *RetryBudget) Spent() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent
}
