package netsim

import (
	"context"
	"time"

	"seccloud/internal/wire"
)

// LatentClient decorates a Client with *real* (slept) round-trip latency,
// unlike Loopback's virtual latency which is only charged to the stats.
// It exists to exercise and benchmark pipelines that overlap network wait
// with CPU work — with virtual latency, concurrent rounds cost the same as
// sequential ones and a scheduling win is invisible. Safe for concurrent
// use when the wrapped client is; concurrent round trips sleep
// independently, so in-flight requests genuinely overlap.
type LatentClient struct {
	inner Client
	rtt   time.Duration
}

var _ Client = (*LatentClient)(nil)

// NewLatentClient wraps inner, sleeping rtt on every round trip (half
// before delivery, half after — the two legs of the trip).
func NewLatentClient(inner Client, rtt time.Duration) *LatentClient {
	return &LatentClient{inner: inner, rtt: rtt}
}

// RoundTrip delivers m after the request leg's delay and returns the reply
// after the response leg's.
func (c *LatentClient) RoundTrip(m wire.Message) (wire.Message, error) {
	return c.RoundTripContext(context.Background(), m)
}

// RoundTripContext is RoundTrip honoring ctx: a deadline or cancellation
// during either leg's sleep aborts with a timeout-classified transport
// error, matching how a socket read deadline would surface.
func (c *LatentClient) RoundTripContext(ctx context.Context, m wire.Message) (wire.Message, error) {
	if err := c.sleep(ctx, c.rtt/2); err != nil {
		return nil, err
	}
	resp, err := c.inner.RoundTripContext(ctx, m)
	if err != nil {
		return nil, err
	}
	if err := c.sleep(ctx, c.rtt-c.rtt/2); err != nil {
		return nil, err
	}
	return resp, nil
}

func (c *LatentClient) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return &TransportError{Op: "roundtrip", Timeout: true, Err: ctx.Err()}
	}
}

// Stats returns the wrapped client's counters.
func (c *LatentClient) Stats() StatsSnapshot { return c.inner.Stats() }

// Close closes the wrapped client.
func (c *LatentClient) Close() error { return c.inner.Close() }
