package netsim

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"seccloud/internal/wire"
)

func TestAdmissionShedsBeyondQueue(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 0, RetryAfter: 250 * time.Millisecond})
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	err := a.Acquire(context.Background())
	if !IsOverloaded(err) {
		t.Fatalf("second Acquire = %v, want overloaded", err)
	}
	if IsRetryable(err) || IsTimeout(err) {
		t.Fatalf("overload classified retryable=%v timeout=%v, want neither", IsRetryable(err), IsTimeout(err))
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter != 250*time.Millisecond {
		t.Fatalf("retry-after hint lost: %v", err)
	}
	a.Release()
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	s := a.Snapshot()
	if s.Shed != 1 || s.Admitted != 2 {
		t.Fatalf("stats = %+v, want 1 shed / 2 admitted", s)
	}
}

// TestAdmissionBoundedDrainsLIFO pins adaptive LIFO: under overload the
// newest waiter — whose client is least likely to have given up — gets
// the freed slot first.
func TestAdmissionBoundedDrainsLIFO(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 4})
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.Release()
		}()
		// Deterministic queue order: wait until waiter i is enqueued.
		for {
			if _, q := a.Depth(); q == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	a.Release()
	wg.Wait()
	if len(order) != 3 || order[0] != 2 {
		t.Fatalf("drain order = %v, want newest (2) first", order)
	}
}

// TestAdmissionUnboundedDrainsFIFO pins the unprotected baseline: an
// unbounded queue never sheds and serves oldest-first.
func TestAdmissionUnboundedDrainsFIFO(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: -1})
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.Release()
		}()
		for {
			if _, q := a.Depth(); q == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	a.Release()
	wg.Wait()
	if len(order) != 3 || order[0] != 0 || order[2] != 2 {
		t.Fatalf("drain order = %v, want FIFO", order)
	}
	if s := a.Snapshot(); s.Shed != 0 {
		t.Fatalf("unbounded queue shed %d requests", s.Shed)
	}
}

func TestAdmissionAcquireHonorsContext(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 2})
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := a.Acquire(ctx)
	if !IsTimeout(err) {
		t.Fatalf("queued Acquire under expired ctx = %v, want timeout", err)
	}
	if _, q := a.Depth(); q != 0 {
		t.Fatalf("cancelled waiter leaked: queue depth %d", q)
	}
	// The slot must still be releasable and reusable.
	a.Release()
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after cancel: %v", err)
	}
}

// TestLoopbackAdmissionSheds drives the full wire path: a busy gate turns
// into an encoded OverloadResponse frame which the client surfaces as a
// typed, non-retryable error — and the Retrier does not burn attempts on
// it.
func TestLoopbackAdmissionSheds(t *testing.T) {
	gate := NewAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 0, RetryAfter: 100 * time.Millisecond})
	if err := gate.Acquire(context.Background()); err != nil { // occupy the only slot
		t.Fatalf("Acquire: %v", err)
	}
	l := NewLoopback(echoHandler{}, LinkConfig{}).WithAdmission(gate)

	_, err := l.RoundTrip(&wire.StoreRequest{UserID: "alice"})
	if !IsOverloaded(err) {
		t.Fatalf("RoundTrip under full gate = %v, want overloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter != 100*time.Millisecond {
		t.Fatalf("retry-after hint did not survive the wire: %v", err)
	}

	clock := &fakeClock{}
	r := newTestRetrier(clock)
	calls := 0
	rerr := r.Do(context.Background(), func(ctx context.Context) error {
		calls++
		_, err := l.RoundTripContext(ctx, &wire.StoreRequest{UserID: "alice"})
		return err
	})
	if !IsOverloaded(rerr) {
		t.Fatalf("retried overload = %v, want overloaded passthrough", rerr)
	}
	if calls != 1 || len(clock.slept) != 0 {
		t.Fatalf("retrier ran %d attempts (%d sleeps) on a shed, want 1 and 0", calls, len(clock.slept))
	}

	gate.Release()
	if _, err := l.RoundTrip(&wire.StoreRequest{UserID: "alice"}); err != nil {
		t.Fatalf("RoundTrip after release: %v", err)
	}
}

// TestSubMillisecondRetryAfterSurvivesWire is the regression for the
// encode-side truncation bug: a sub-millisecond RetryAfter hint used to
// truncate to RetryAfterMillis=0 — "no hint" — stripping the backoff
// signal exactly when the server most wanted the client to pause. The
// encoder now rounds up to 1ms.
func TestSubMillisecondRetryAfterSurvivesWire(t *testing.T) {
	cases := []struct {
		hint time.Duration
		want time.Duration
	}{
		{500 * time.Microsecond, time.Millisecond},  // rounds up, not to zero
		{time.Millisecond, time.Millisecond},        // exact stays exact
		{1500 * time.Microsecond, 2 * time.Millisecond},
		{0, 0}, // genuinely no hint stays no hint
	}
	for _, tc := range cases {
		gate := NewAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 0, RetryAfter: tc.hint})
		if err := gate.Acquire(context.Background()); err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		l := NewLoopback(echoHandler{}, LinkConfig{}).WithAdmission(gate)
		_, err := l.RoundTrip(&wire.StoreRequest{UserID: "alice"})
		var oe *OverloadedError
		if !errors.As(err, &oe) {
			t.Fatalf("hint %v: got %v, want OverloadedError", tc.hint, err)
		}
		if oe.RetryAfter != tc.want {
			t.Fatalf("hint %v came back as %v after the wire, want %v", tc.hint, oe.RetryAfter, tc.want)
		}
	}
}

func TestRetryAfterToMillis(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int64
	}{
		{0, 0},
		{-time.Millisecond, 0},
		{time.Microsecond, 1},
		{999 * time.Microsecond, 1},
		{time.Millisecond, 1},
		{1001 * time.Microsecond, 2},
		{250 * time.Millisecond, 250},
	}
	for _, tc := range cases {
		if got := retryAfterToMillis(tc.d); got != tc.want {
			t.Fatalf("retryAfterToMillis(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestRetryBudgetStopsAmplification(t *testing.T) {
	clock := &fakeClock{}
	r := newTestRetrier(clock)
	r.MaxAttempts = 10
	r.Budget = NewRetryBudget(2, 0)
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return &FaultError{Kind: FaultDrop}
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) || !ex.BudgetDenied {
		t.Fatalf("err = %v, want budget-denied exhaustion", err)
	}
	// First attempt is free; the 2-token budget allows exactly 2 retries.
	if calls != 3 {
		t.Fatalf("op ran %d times, want 3 (budget of 2 retries)", calls)
	}
	if got := r.Budget.Denied(); got != 1 {
		t.Fatalf("Denied() = %d, want 1", got)
	}
	// Still retryable-classified underneath: callers can tell what failed.
	if !IsRetryable(err) {
		t.Fatal("budget exhaustion lost the underlying taxonomy")
	}
}

func TestRetryBudgetRefundsOnSuccess(t *testing.T) {
	b := NewRetryBudget(1, 1) // full refund per success
	clock := &fakeClock{}
	r := newTestRetrier(clock)
	r.MaxAttempts = 2
	r.Budget = b
	fail := true
	op := func(context.Context) error {
		if fail {
			fail = false
			return &FaultError{Kind: FaultDrop}
		}
		return nil
	}
	for i := 0; i < 5; i++ {
		fail = true
		if err := r.Do(context.Background(), op); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if got := b.Denied(); got != 0 {
		t.Fatalf("refunded budget denied %d retries", got)
	}
	if got := b.Spent(); got != 5 {
		t.Fatalf("Spent() = %d, want 5", got)
	}
}

// TestTCPMaxConnsReturnsTypedOverload pins the satellite fix: a dial over
// MaxConns gets the typed overload frame, not a silent close.
func TestTCPMaxConnsReturnsTypedOverload(t *testing.T) {
	srv, err := NewTCPServerConfig("127.0.0.1:0", echoHandler{}, TCPServerConfig{
		MaxConns:  1,
		Admission: NewAdmission(AdmissionConfig{MaxInflight: 1, RetryAfter: 50 * time.Millisecond}),
	})
	if err != nil {
		t.Fatalf("NewTCPServerConfig: %v", err)
	}
	defer srv.Close()

	c1, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	defer c1.Close()
	// One round trip proves c1 is registered and holding the only slot.
	if _, err := c1.RoundTrip(&wire.StoreRequest{UserID: "a"}); err != nil {
		t.Fatalf("round trip 1: %v", err)
	}

	c2, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer c2.Close()
	_, rerr := c2.RoundTrip(&wire.StoreRequest{UserID: "b"})
	if !IsOverloaded(rerr) {
		t.Fatalf("refused conn round trip = %v, want typed overload", rerr)
	}
	var oe *OverloadedError
	if !errors.As(rerr, &oe) || oe.RetryAfter != 50*time.Millisecond {
		t.Fatalf("refusal lost the retry-after hint: %v", rerr)
	}
	if got := srv.RefusedConns(); got != 1 {
		t.Fatalf("RefusedConns = %d, want 1", got)
	}
}

// TestTCPAdmissionSheds drives the gate through real sockets.
func TestTCPAdmissionSheds(t *testing.T) {
	gate := NewAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 0, RetryAfter: 25 * time.Millisecond})
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	srv, err := NewTCPServerConfig("127.0.0.1:0", echoHandler{}, TCPServerConfig{Admission: gate})
	if err != nil {
		t.Fatalf("NewTCPServerConfig: %v", err)
	}
	defer srv.Close()
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.RoundTrip(&wire.StoreRequest{UserID: "a"}); !IsOverloaded(err) {
		t.Fatalf("round trip under full gate = %v, want overloaded", err)
	}
	gate.Release()
	if _, err := c.RoundTrip(&wire.StoreRequest{UserID: "a"}); err != nil {
		t.Fatalf("round trip after release: %v", err)
	}
}

// slowClient delays the wrapped client's replies until released, letting
// hedge tests make "slow primary" deterministic.
type slowClient struct {
	inner   Client
	release chan struct{}
}

func (s *slowClient) RoundTrip(m wire.Message) (wire.Message, error) {
	return s.RoundTripContext(context.Background(), m)
}

func (s *slowClient) RoundTripContext(ctx context.Context, m wire.Message) (wire.Message, error) {
	select {
	case <-s.release:
	case <-ctx.Done():
		return nil, transportErr("roundtrip", ctx.Err())
	}
	return s.inner.RoundTripContext(ctx, m)
}

func (s *slowClient) Stats() StatsSnapshot { return s.inner.Stats() }
func (s *slowClient) Close() error         { return s.inner.Close() }

func TestHedgedRoundTripSecondaryWins(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	primary := &slowClient{inner: NewLoopback(echoHandler{}, LinkConfig{}), release: release}
	secondary := NewLoopback(echoHandler{}, LinkConfig{})
	var stats HedgeStats
	resp, hedged, err := HedgedRoundTrip(context.Background(), primary, secondary,
		time.Millisecond, &wire.StoreRequest{UserID: "a"}, &stats)
	if err != nil {
		t.Fatalf("HedgedRoundTrip: %v", err)
	}
	if !hedged {
		t.Fatal("fast secondary did not win against a stuck primary")
	}
	if _, ok := resp.(*wire.StoreResponse); !ok {
		t.Fatalf("unexpected response %T", resp)
	}
	if stats.Launched != 1 || stats.Wins != 1 {
		t.Fatalf("stats = %+v, want 1 launched / 1 win", stats)
	}
}

func TestHedgedRoundTripPrimaryFastPath(t *testing.T) {
	primary := NewLoopback(echoHandler{}, LinkConfig{})
	secondary := NewLoopback(echoHandler{}, LinkConfig{})
	var stats HedgeStats
	_, hedged, err := HedgedRoundTrip(context.Background(), primary, secondary,
		time.Hour, &wire.StoreRequest{UserID: "a"}, &stats)
	if err != nil {
		t.Fatalf("HedgedRoundTrip: %v", err)
	}
	if hedged || stats.Launched != 0 {
		t.Fatalf("hedge launched (%+v) despite a fast primary", stats)
	}
	if sec := secondary.Stats(); sec.Calls != 0 {
		t.Fatalf("secondary saw %d calls, want 0", sec.Calls)
	}
}

// TestHedgedDuplicatesAreIdempotent pins the dedup contract hedging
// leans on: firing the same request at two replicas of the same state
// yields byte-identical replies, so which leg wins cannot change the
// audit outcome.
func TestHedgedDuplicatesAreIdempotent(t *testing.T) {
	h := echoHandler{}
	req := &wire.StoreRequest{UserID: "alice", Positions: []uint64{1, 2}}
	a, err := wire.Encode(h.Handle(req))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	b, err := wire.Encode(h.Handle(req))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("duplicate requests produced different reply bytes")
	}
}

func TestHedgedClientAdaptiveDelay(t *testing.T) {
	c := NewHedgedClient(NewLoopback(echoHandler{}, LinkConfig{}), NewLoopback(echoHandler{}, LinkConfig{}), 0)
	if d := c.hedgeDelay(); d != c.minDelay {
		t.Fatalf("cold hedge delay = %v, want floor %v", d, c.minDelay)
	}
	for i := 0; i < 100; i++ {
		c.tracker.Observe(10 * time.Millisecond)
	}
	if d := c.hedgeDelay(); d != 10*time.Millisecond {
		t.Fatalf("warm hedge delay = %v, want observed p95 10ms", d)
	}
	if _, err := c.RoundTrip(&wire.StoreRequest{UserID: "a"}); err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
}

func TestLatencyTrackerQuantile(t *testing.T) {
	tr := NewLatencyTracker(100)
	if got := tr.P95(); got != 0 {
		t.Fatalf("empty tracker p95 = %v", got)
	}
	for i := 1; i <= 100; i++ {
		tr.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := tr.P95(); got != 95*time.Millisecond {
		t.Fatalf("p95 = %v, want 95ms", got)
	}
	if got := tr.Quantile(0.5); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
}
