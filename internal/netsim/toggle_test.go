package netsim

import (
	"testing"

	"seccloud/internal/wire"
)

func TestDownableHandler(t *testing.T) {
	echo := HandlerFunc(func(m wire.Message) wire.Message {
		return m
	})
	dh := NewDownableHandler(echo)
	client := NewLoopback(dh, LinkConfig{})

	if _, err := client.RoundTrip(&wire.ErrorResponse{Msg: "ping"}); err != nil {
		t.Fatalf("round trip while up: %v", err)
	}

	dh.SetDown(true)
	if !dh.Down() {
		t.Fatal("Down() = false after SetDown(true)")
	}
	_, err := client.RoundTrip(&wire.ErrorResponse{Msg: "ping"})
	if err == nil {
		t.Fatal("round trip while down succeeded")
	}
	// A downed server must look like a dead process — a retryable
	// transport fault — not a protocol error the caller could blame on
	// the peer's logic.
	if !IsRetryable(err) {
		t.Fatalf("down error not retryable: %v", err)
	}

	dh.SetDown(false)
	if _, err := client.RoundTrip(&wire.ErrorResponse{Msg: "ping"}); err != nil {
		t.Fatalf("round trip after revive: %v", err)
	}
}
