package netsim

import (
	"context"
	"sync"

	"seccloud/internal/wire"
)

// Partition is a shared, mutable map of which directed node pairs cannot
// currently exchange messages. Unlike FaultConfig's per-link symmetric
// rates, a partition is directional and group-wise: Cut({"da"}, {"s1"})
// blocks auditor→server traffic while the reverse direction still works,
// which is how asymmetric real-world partitions (one-way firewall rules,
// broken return routes) behave. Every PartitionedClient consults the same
// Partition, so one Cut call re-shapes the whole topology atomically.
//
// The asymmetry matters for invariants: when only the *response* leg is
// blocked, the server still executes the request — a write can be applied
// without its ack ever arriving. Schedules exercising that path are what
// separate "acked writes survive" from the weaker "observed writes
// survive".
type Partition struct {
	mu      sync.Mutex
	blocked map[string]map[string]bool // from → to → blocked
	drops   int64
}

// NewPartition returns a fully-healed partition map.
func NewPartition() *Partition {
	return &Partition{blocked: make(map[string]map[string]bool)}
}

// Block severs the single directed edge from → to.
func (p *Partition) Block(from, to string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.blocked[from]
	if m == nil {
		m = make(map[string]bool)
		p.blocked[from] = m
	}
	m[to] = true
}

// CutOneWay blocks every edge from a node in `from` to a node in `to`
// (traffic the other way still flows).
func (p *Partition) CutOneWay(from, to []string) {
	for _, f := range from {
		for _, t := range to {
			p.Block(f, t)
		}
	}
}

// Cut blocks both directions between the two groups — the classic
// symmetric group partition, built from two directional cuts.
func (p *Partition) Cut(a, b []string) {
	p.CutOneWay(a, b)
	p.CutOneWay(b, a)
}

// Heal clears every blocked edge.
func (p *Partition) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocked = make(map[string]map[string]bool)
}

// Blocked reports whether from → to traffic is currently severed.
func (p *Partition) Blocked(from, to string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked[from][to]
}

// Drops returns how many message legs the partition has eaten.
func (p *Partition) Drops() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drops
}

func (p *Partition) dropped() {
	p.mu.Lock()
	p.drops++
	p.mu.Unlock()
}

// PartitionedClient wraps a Client with partition checks on both legs.
// A blocked request leg means the server never sees the call; a blocked
// response leg means the server executed it but the reply is lost — the
// caller cannot tell the two apart, exactly like a real partition. Either
// way the error is a retryable *FaultError (FaultPartition): a partition
// says nothing about the peer's honesty.
type PartitionedClient struct {
	inner    Client
	part     *Partition
	from, to string
}

var _ Client = (*PartitionedClient)(nil)

// PartitionClient wraps inner so its traffic is subject to part's cuts,
// with the endpoints named from (caller side) and to (callee side).
func PartitionClient(inner Client, part *Partition, from, to string) *PartitionedClient {
	return &PartitionedClient{inner: inner, part: part, from: from, to: to}
}

// RoundTrip sends with a background context.
func (c *PartitionedClient) RoundTrip(m wire.Message) (wire.Message, error) {
	return c.RoundTripContext(context.Background(), m)
}

// RoundTripContext applies the partition to both message legs.
func (c *PartitionedClient) RoundTripContext(ctx context.Context, m wire.Message) (wire.Message, error) {
	if c.part.Blocked(c.from, c.to) {
		c.part.dropped()
		return nil, &FaultError{Kind: FaultPartition, Op: "request"}
	}
	resp, err := c.inner.RoundTripContext(ctx, m)
	if err != nil {
		return nil, err
	}
	if c.part.Blocked(c.to, c.from) {
		// The handler already ran: the request took effect server-side,
		// only the acknowledgement is lost.
		c.part.dropped()
		return nil, &FaultError{Kind: FaultPartition, Op: "response"}
	}
	return resp, nil
}

// Stats passes through to the wrapped link.
func (c *PartitionedClient) Stats() StatsSnapshot { return c.inner.Stats() }

// Close passes through to the wrapped link.
func (c *PartitionedClient) Close() error { return c.inner.Close() }
