package netsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"seccloud/internal/obs"
	"seccloud/internal/wire"
)

// OverloadedError is the client-side face of a server's typed shed reply
// (wire.OverloadResponse): the peer answered, honestly, that it refused
// to execute the request because its admission queue is full.
//
// It is deliberately OUTSIDE the retryable taxonomy — IsRetryable and
// IsTimeout both report false for it — because retrying into a saturated
// server amplifies the overload that caused the shed in the first place.
// Callers should back off for RetryAfter (when the server hinted one) or
// fail over to a different replica. Audit layers classify it as a shed
// round, never a bad proof: an overloaded server is busy, not cheating.
type OverloadedError struct {
	// Op names the operation that was shed.
	Op string
	// RetryAfter is the server's backoff hint; zero means "no hint".
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadedError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("netsim: %s shed by overloaded peer (retry after %v)", e.Op, e.RetryAfter)
	}
	return fmt.Sprintf("netsim: %s shed by overloaded peer", e.Op)
}

// IsOverloaded reports whether err (anywhere in its chain) is a typed
// overload shed.
func IsOverloaded(err error) bool {
	var oe *OverloadedError
	return errors.As(err, &oe)
}

// retryAfterToMillis encodes a backoff hint for the wire, where 0 means
// "no hint". Sub-millisecond hints round UP to 1ms instead of truncating
// to 0: a 500µs RetryAfter that arrives as "no hint" strips the client of
// the backoff signal entirely, which is the opposite of what a shedding
// server wants.
func retryAfterToMillis(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	ms := int64(d / time.Millisecond)
	if d%time.Millisecond != 0 {
		ms++
	}
	return ms
}

// overloadResponse converts a decoded reply into the typed error when the
// peer shed the request. Transports call it on every successful decode so
// an OverloadResponse never leaks to protocol code as a normal message.
func overloadResponse(op string, m wire.Message) (wire.Message, error) {
	ov, ok := m.(*wire.OverloadResponse)
	if !ok {
		return m, nil
	}
	return nil, &OverloadedError{Op: op, RetryAfter: time.Duration(ov.RetryAfterMillis) * time.Millisecond}
}

// CheckOverload is the exported face of overloadResponse for transports
// outside this package (the daemon's pooled client): it converts a decoded
// OverloadResponse into the typed *OverloadedError so sheds never reach
// protocol code as normal messages. Any other message passes through.
func CheckOverload(op string, m wire.Message) (wire.Message, error) {
	return overloadResponse(op, m)
}

// RetryAfterMillis is the exported wire encoding of a backoff hint (0
// means "no hint"; sub-millisecond hints round up), for servers outside
// this package that build their own OverloadResponse frames.
func RetryAfterMillis(d time.Duration) int64 {
	return retryAfterToMillis(d)
}

// AdmissionConfig bounds a server's concurrent work and its request
// queue.
type AdmissionConfig struct {
	// MaxInflight is the number of requests allowed to execute at once;
	// values < 1 mean 1.
	MaxInflight int
	// MaxQueue bounds the waiters behind the inflight slots. 0 means no
	// queue (shed immediately when all slots are busy). A negative value
	// means an UNBOUNDED queue — the classic unprotected server — kept
	// only so experiments can show what shedding buys.
	MaxQueue int
	// RetryAfter is the backoff hint attached to shed responses.
	RetryAfter time.Duration
}

// admitWaiter is one queued request. done carries slot ownership: the
// releaser that closes it has already transferred its inflight slot.
type admitWaiter struct {
	done     chan struct{}
	admitted bool // guarded by Admission.mu
}

// Admission is a server-side gate: at most MaxInflight requests execute
// concurrently, at most MaxQueue more wait, and everything beyond that is
// shed with a typed overload response instead of queueing without bound.
//
// Bounded queues drain newest-first (adaptive LIFO): under a burst the
// most recently arrived request is the one whose client is least likely
// to have given up, so serving it converts capacity into goodput instead
// of into replies nobody is waiting for anymore. The unbounded mode
// (MaxQueue < 0) drains FIFO on purpose — it models the naive server
// whose latency grows with its backlog, which is exactly the pathology
// the experiments contrast against.
//
// Safe for concurrent use. The zero value is not useful; use
// NewAdmission.
type Admission struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	inflight int
	waiters  []*admitWaiter

	admitted uint64
	queued   uint64
	shed     uint64
	maxDepth int

	obsShed *obs.Counter
}

// NewAdmission returns a gate for cfg.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.MaxInflight < 1 {
		cfg.MaxInflight = 1
	}
	return &Admission{cfg: cfg}
}

// WithObs registers the gate's instruments on h under the given transport
// label: admission_shed_total counts sheds, and scrape-time gauges
// admission_inflight / admission_queue_depth expose live occupancy.
// Returns a for chaining; a nil hub is a no-op.
func (a *Admission) WithObs(h *obs.Hub, transport string) *Admission {
	if h == nil {
		return a
	}
	a.obsShed = h.Counter("admission_shed_total", "transport").With(transport)
	reg := h.Registry()
	inflight := reg.Gauge("admission_inflight", "transport").With(transport)
	depth := reg.Gauge("admission_queue_depth", "transport").With(transport)
	reg.OnScrape(func() {
		i, q := a.Depth()
		inflight.Set(float64(i))
		depth.Set(float64(q))
	})
	return a
}

// RetryAfter returns the configured shed backoff hint.
func (a *Admission) RetryAfter() time.Duration { return a.cfg.RetryAfter }

// shedError builds the typed error for a locally applied gate.
func (a *Admission) shedError(op string) error {
	return &OverloadedError{Op: op, RetryAfter: a.cfg.RetryAfter}
}

// Acquire admits the caller, queues it, or sheds it. A nil return means
// the caller owns an execution slot and must call Release exactly once.
// A shed returns an *OverloadedError; a cancellation while queued returns
// a timeout-classified transport error (the caller gave up waiting — the
// request was never executed).
func (a *Admission) Acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.inflight < a.cfg.MaxInflight {
		a.inflight++
		a.admitted++
		a.mu.Unlock()
		return nil
	}
	if a.cfg.MaxQueue >= 0 && len(a.waiters) >= a.cfg.MaxQueue {
		a.shed++
		if d := len(a.waiters); d > a.maxDepth {
			a.maxDepth = d
		}
		a.mu.Unlock()
		if a.obsShed != nil {
			a.obsShed.Inc()
		}
		return a.shedError("admit")
	}
	w := &admitWaiter{done: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.queued++
	if d := len(a.waiters); d > a.maxDepth {
		a.maxDepth = d
	}
	a.mu.Unlock()

	select {
	case <-w.done:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.admitted {
			// Lost the race: a releaser handed us a slot just as the
			// caller gave up. Pass the slot on so it is not leaked.
			a.mu.Unlock()
			a.Release()
			return &TransportError{Op: "admit", Timeout: true, Err: ctx.Err()}
		}
		for i, q := range a.waiters {
			if q == w {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				break
			}
		}
		a.mu.Unlock()
		return &TransportError{Op: "admit", Timeout: true, Err: ctx.Err()}
	}
}

// Release returns an execution slot: the next waiter (newest-first for
// bounded queues, oldest-first for the unbounded baseline) inherits it,
// or the slot goes idle.
func (a *Admission) Release() {
	a.mu.Lock()
	if n := len(a.waiters); n > 0 {
		var w *admitWaiter
		if a.cfg.MaxQueue < 0 {
			w, a.waiters = a.waiters[0], a.waiters[1:]
		} else {
			w, a.waiters = a.waiters[n-1], a.waiters[:n-1]
		}
		w.admitted = true
		a.admitted++
		close(w.done)
		a.mu.Unlock()
		return
	}
	a.inflight--
	a.mu.Unlock()
}

// Depth returns the current occupancy: executing requests and queued
// waiters.
func (a *Admission) Depth() (inflight, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight, len(a.waiters)
}

// AdmissionStats is a snapshot of the gate's counters.
type AdmissionStats struct {
	// Admitted counts requests that got an execution slot.
	Admitted uint64
	// Queued counts requests that waited before executing (or giving up).
	Queued uint64
	// Shed counts requests refused with an overload response.
	Shed uint64
	// MaxQueueDepth is the deepest the wait queue ever got.
	MaxQueueDepth int
}

// Snapshot returns the gate counters.
func (a *Admission) Snapshot() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{Admitted: a.admitted, Queued: a.queued, Shed: a.shed, MaxQueueDepth: a.maxDepth}
}
