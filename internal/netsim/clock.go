package netsim

import (
	"sync/atomic"
	"time"
)

// Clock is a wall clock with injectable, bounded skew — the nemesis's
// handle on a node's notion of "now". Production code should take a
// `func() time.Time` and be handed a Clock's Now, which reads the real
// clock plus the currently configured offset; with zero skew it is
// exactly time.Now. Skew is atomic, so the nemesis can slew a node
// mid-operation without synchronizing with it.
type Clock struct {
	skew atomic.Int64 // nanoseconds added to the real clock
}

// NewClock returns an unskewed clock.
func NewClock() *Clock { return &Clock{} }

// Now returns the skewed current time.
func (c *Clock) Now() time.Time {
	if c == nil {
		return time.Now()
	}
	return time.Now().Add(time.Duration(c.skew.Load()))
}

// SetSkew sets the clock's offset from real time (positive = fast).
func (c *Clock) SetSkew(d time.Duration) { c.skew.Store(int64(d)) }

// Skew returns the current offset.
func (c *Clock) Skew() time.Duration { return time.Duration(c.skew.Load()) }
