package netsim

import (
	"errors"
	"time"

	"seccloud/internal/obs"
)

// rpcObs holds pre-resolved instrument cells for one transport, so the
// per-round-trip cost with observability enabled is two atomic adds and a
// histogram insert. A nil *rpcObs (the default) no-ops everywhere,
// keeping uninstrumented links allocation-free.
type rpcObs struct {
	transport string
	requests  *obs.Counter
	latency   *obs.Histogram
	faults    *obs.CounterVec
}

func newRPCObs(h *obs.Hub, transport string) *rpcObs {
	if h == nil {
		return nil
	}
	return &rpcObs{
		transport: transport,
		requests:  h.Counter("rpc_requests_total", "transport").With(transport),
		latency:   h.Histogram("rpc_latency_seconds", nil, "transport").With(transport),
		faults:    h.Counter("rpc_faults_total", "transport", "fault"),
	}
}

// observe records one round trip: lat is modeled time for the loopback
// transport and wall time for TCP; failed trips additionally count into
// rpc_faults_total by fault class.
func (o *rpcObs) observe(lat time.Duration, err error) {
	if o == nil {
		return
	}
	o.requests.Inc()
	o.latency.Observe(lat.Seconds())
	if err != nil {
		o.faults.With(o.transport, faultLabel(err)).Inc()
	}
}

// faultLabel classifies a round-trip error for the rpc_faults_total
// fault label: injected faults by kind (drop, corrupt, disconnect, …),
// typed sheds as "overloaded", deadline misses as "timeout", anything
// else as "transport".
func faultLabel(err error) string {
	var fe *FaultError
	if errors.As(err, &fe) {
		return fe.Kind.String()
	}
	if IsOverloaded(err) {
		return "overloaded"
	}
	var te *TransportError
	if errors.As(err, &te) && te.Timeout {
		return "timeout"
	}
	return "transport"
}

// RetryHook returns an OnRetry callback for a Retrier that counts retry
// attempts into rpc_retries_total{fault} on the hub. Returns nil for a
// nil hub, which Retrier treats as "no hook".
func RetryHook(h *obs.Hub) func(attempt int, err error, backoff time.Duration) {
	if h == nil {
		return nil
	}
	retries := h.Counter("rpc_retries_total", "fault")
	return func(_ int, err error, _ time.Duration) {
		retries.With(faultLabel(err)).Inc()
	}
}
