module seccloud

go 1.22
