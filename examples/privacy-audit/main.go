// Command privacy-audit demonstrates the privacy-cheating discouragement
// property (§III-B, Definition 2): a hacked cloud server tries to sell a
// user's data to a buyer, offering the stored designated signature as
// "proof of authenticity". The demo shows why the proof is worthless:
//
//  1. the designated verifiers (server, DA) can verify the signature;
//  2. the buyer — lacking a designated secret key — cannot check it at
//     all (the public verification equation needs V, never published);
//  3. worse for the seller, any designated verifier can *simulate*
//     transcripts that are indistinguishable from real ones, so even a
//     verifying party can't convince the buyer the data is genuine.
//
// Run with:
//
//	go run ./examples/privacy-audit
package main

import (
	"crypto/rand"
	"fmt"
	"os"
)

import "seccloud"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "privacy-audit:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := seccloud.NewSystem(seccloud.ParamInsecureTest256)
	if err != nil {
		return err
	}
	scheme := sys.Scheme()

	alice, err := sys.ExtractKey("user:alice")
	if err != nil {
		return err
	}
	serverKey, err := sys.ExtractKey("cs:server-1")
	if err != nil {
		return err
	}
	daKey, err := sys.ExtractKey("da:tpa")
	if err != nil {
		return err
	}
	// The buyer registers too — identity keys are not the barrier; the
	// *designation* is.
	buyerKey, err := sys.ExtractKey("corp:business-competitor")
	if err != nil {
		return err
	}

	secret := []byte("Q3 acquisition target list: ...")
	fmt.Printf("alice outsources a confidential record (%d bytes), signed for CS and DA only\n", len(secret))
	sigs, err := scheme.SignDesignated(alice, secret, rand.Reader, serverKey.ID, daKey.ID)
	if err != nil {
		return err
	}
	toServer, toDA := sigs[0], sigs[1]

	// 1. Designated verifiers succeed.
	if err := scheme.Verify(toServer, secret, serverKey); err != nil {
		return fmt.Errorf("server verification should succeed: %w", err)
	}
	if err := scheme.Verify(toDA, secret, daKey); err != nil {
		return fmt.Errorf("DA verification should succeed: %w", err)
	}
	fmt.Println("✓ cloud server and DA verify the stored record (eq. 5 / eq. 7)")

	// 2. The hacked server leaks (record, signature) to the buyer. The
	// buyer cannot verify: the signature is bound to the server's key.
	if err := scheme.Verify(toServer, secret, buyerKey); err == nil {
		return fmt.Errorf("buyer verified a signature designated to the server — privacy broken")
	}
	fmt.Println("✓ the buyer cannot verify the leaked signature with its own key")

	// 3. Even if the buyer trusts the server to verify on its behalf, the
	// server could have fabricated the whole transcript: simulate one for
	// a record alice never wrote.
	fake := []byte("Q3 acquisition target list: COMPLETELY FABRICATED")
	simulated, err := scheme.Simulate(alice.ID, fake, serverKey, rand.Reader)
	if err != nil {
		return err
	}
	if err := scheme.Verify(simulated, fake, serverKey); err != nil {
		return fmt.Errorf("simulated transcript should verify for the simulator: %w", err)
	}
	fmt.Println("✓ the server forged a transcript for data alice never signed —")
	fmt.Println("  it verifies exactly like the real one under the server's key")

	// 4. Consequently the pair (record, Σ) carries no transferable
	// authenticity: Pr[InfoLeak] reduces to the signature-forgery
	// probability (Theorem 2). Selling the data is discouraged because no
	// buyer can distinguish stolen gold from fabricated lead.
	fmt.Println("conclusion: leaked transcripts convince nobody — privacy cheating is discouraged")
	return nil
}
