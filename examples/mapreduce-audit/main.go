// Command mapreduce-audit demonstrates the paper's distributed scenario
// (§III-A): a CSP splits a batch job across a fleet of cloud servers, one
// of which is Byzantine and fakes its sub-results. Per-server sampled
// audits pinpoint the cheater, the user drops its results, and the
// sub-job is re-dispatched to an honest server (the Return Step of §V-D).
//
// Run with:
//
//	go run ./examples/mapreduce-audit
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"seccloud"
	"seccloud/internal/funcs"
	"seccloud/internal/workload"
)

const (
	fleetSize = 5
	byzantine = 2 // index of the corrupted server
	numBlocks = 60
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mapreduce-audit:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := seccloud.NewSystem(seccloud.ParamInsecureTest256)
	if err != nil {
		return err
	}
	user, err := sys.NewUser("user:analytics-team")
	if err != nil {
		return err
	}
	auditor, err := sys.NewAuditor("da:tpa")
	if err != nil {
		return err
	}

	// Build the fleet: server 2 skips the work and guesses results.
	servers := make([]*seccloud.Server, fleetSize)
	clients := make([]seccloud.Client, fleetSize)
	ids := make([]string, 0, fleetSize+1)
	for i := range servers {
		cfg := seccloud.ServerConfig{VerifyOnStore: true}
		if i == byzantine {
			cfg.Policy = &seccloud.ComputationCheater{CSC: 0, Rng: rand.New(rand.NewSource(1))}
		}
		srv, err := sys.NewServer(fmt.Sprintf("cs:node-%d", i), cfg)
		if err != nil {
			return err
		}
		servers[i] = srv
		clients[i] = seccloud.Loopback(srv)
		ids = append(ids, srv.ID())
	}
	ids = append(ids, auditor.ID())
	csp, err := seccloud.NewCSP(clients)
	if err != nil {
		return err
	}
	fmt.Printf("fleet of %d servers up; node-%d is Byzantine (computes nothing, guesses everything)\n",
		fleetSize, byzantine)

	// Replicate the dataset and fan the job out.
	gen := seccloud.NewGenerator(7)
	ds := gen.GenDataset(user.ID(), numBlocks, 16)
	req, err := user.PrepareStore(ds, ids...)
	if err != nil {
		return err
	}
	if err := csp.ReplicateStore(user, req); err != nil {
		return err
	}
	job := workload.UniformJob(user.ID(), funcs.Spec{Name: "digest"}, numBlocks)
	subs, err := csp.RunJob(user, "mapreduce-1", job)
	if err != nil {
		return err
	}
	fmt.Printf("job of %d sub-tasks split across %d servers (%d tasks each)\n",
		job.Len(), len(subs), len(subs[0].TaskIndices))

	// Audit every server's slice.
	warrant, err := user.Delegate(auditor.ID(), "", time.Now().Add(time.Hour))
	if err != nil {
		return err
	}
	flagged := -1
	for i, d := range delegations(user, subs, warrant) {
		report, err := auditor.AuditJob(csp.Client(subs[i].ServerIdx), d, seccloud.AuditConfig{
			SampleSize:      4,
			BatchSignatures: true,
		})
		if err != nil {
			return err
		}
		status := "PASS"
		if !report.Valid() {
			status = fmt.Sprintf("FAIL (%d findings, first: %s)",
				len(report.Failures), report.Failures[0].Check)
			flagged = subs[i].ServerIdx
		}
		fmt.Printf("  audit node-%d: %s\n", subs[i].ServerIdx, status)
	}
	if flagged != byzantine {
		return fmt.Errorf("audits flagged node %d, expected node %d", flagged, byzantine)
	}

	// Return Step: drop the cheater's results and re-dispatch its slice to
	// an honest neighbour, then merge.
	honest := (byzantine + 1) % fleetSize
	fmt.Printf("re-dispatching node-%d's slice to honest node-%d\n", byzantine, honest)
	var fixed []*seccloud.SubJob
	for _, sub := range subs {
		if sub.ServerIdx != byzantine {
			fixed = append(fixed, sub)
			continue
		}
		redo := &workload.Job{Owner: job.Owner}
		for _, ti := range sub.TaskIndices {
			redo.SubTasks = append(redo.SubTasks, job.SubTasks[ti])
		}
		resp, err := user.SubmitJob(csp.Client(honest), sub.JobID+"/retry", redo)
		if err != nil {
			return err
		}
		fixed = append(fixed, &seccloud.SubJob{
			ServerIdx:   honest,
			JobID:       sub.JobID + "/retry",
			TaskIndices: sub.TaskIndices,
			Tasks:       sub.Tasks,
			Resp:        resp,
		})
	}
	merged, err := mergeResults(job.Len(), fixed)
	if err != nil {
		return err
	}

	// Cross-check the merged results against direct evaluation.
	reg := funcs.NewRegistry()
	for i := range merged {
		want, err := reg.Eval(funcs.Spec{Name: "digest"}, [][]byte{ds.Blocks[i]})
		if err != nil {
			return err
		}
		if string(want) != string(merged[i]) {
			return fmt.Errorf("merged result %d still wrong after re-dispatch", i)
		}
	}
	fmt.Printf("all %d results correct after re-dispatch — Byzantine node contained\n", len(merged))
	return nil
}

// delegations and mergeResults re-export core helpers through the facade
// types (kept local so the example reads top-to-bottom).
func delegations(user *seccloud.User, subs []*seccloud.SubJob, w seccloud.Warrant) []*seccloud.JobDelegation {
	return seccloud.Delegations(user, subs, w)
}

func mergeResults(n int, subs []*seccloud.SubJob) ([][]byte, error) {
	return seccloud.MergeResults(n, subs)
}
