// Command optimal-sampling demonstrates §VII-C: choosing the sample size
// that minimizes the DA's total cost (eq. 17, Theorem 3), with the cost
// coefficients learned from audit history rather than configured.
//
// The demo runs repeated audits against a partially cheating server,
// feeds the observed transmission bytes / computation time / detection
// outcomes into the history learner, and then asks Theorem 3 for the
// optimal t under several assumed cheat-loss magnitudes.
//
// Run with:
//
//	go run ./examples/optimal-sampling
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"seccloud"
	"seccloud/internal/funcs"
	"seccloud/internal/workload"
)

const (
	numBlocks  = 64
	csc        = 0.9 // the server skips 10% of the work
	auditRuns  = 40
	probeT     = 5 // sample size used during the learning phase
	ewmaWeight = 0.2
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "optimal-sampling:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := seccloud.NewSystem(seccloud.ParamInsecureTest256)
	if err != nil {
		return err
	}
	user, err := sys.NewUser("user:alice")
	if err != nil {
		return err
	}
	auditor, err := sys.NewAuditor("da:tpa")
	if err != nil {
		return err
	}
	server, err := sys.NewServer("cs:lazy", seccloud.ServerConfig{
		VerifyOnStore: true,
		Policy:        &seccloud.ComputationCheater{CSC: csc, Rng: rand.New(rand.NewSource(1))},
	})
	if err != nil {
		return err
	}
	link := seccloud.Loopback(server)

	gen := seccloud.NewGenerator(99)
	ds := gen.GenDataset(user.ID(), numBlocks, 16)
	req, err := user.PrepareStore(ds, server.ID(), auditor.ID())
	if err != nil {
		return err
	}
	if err := user.Store(link, req); err != nil {
		return err
	}
	fmt.Printf("server is a lazy cheater: computes %.0f%% of sub-tasks, guesses the rest\n", csc*100)

	learner, err := seccloud.NewHistoryLearner(ewmaWeight)
	if err != nil {
		return err
	}

	// Learning phase: repeated jobs + small probing audits.
	detected := 0
	for run := 0; run < auditRuns; run++ {
		jobID := fmt.Sprintf("job-%d", run)
		job := workload.UniformJob(user.ID(), funcs.Spec{Name: "digest"}, numBlocks)
		resp, err := user.SubmitJob(link, jobID, job)
		if err != nil {
			return err
		}
		d, err := seccloud.Delegate(user, auditor.ID(), jobID, job, resp, time.Now().Add(time.Hour))
		if err != nil {
			return err
		}
		before := link.Stats()
		report, err := auditor.AuditJob(link, d, seccloud.AuditConfig{
			SampleSize:      probeT,
			Rng:             rand.New(rand.NewSource(int64(run))),
			BatchSignatures: true,
		})
		if err != nil {
			return err
		}
		after := link.Stats()
		if !report.Valid() {
			detected++
		}
		if err := learner.Observe(seccloud.Observation{
			SampleSize: report.SampleSize,
			TransBytes: after.TotalBytes() - before.TotalBytes(),
			CompCost:   float64(report.Elapsed.Nanoseconds()),
			Detected:   !report.Valid(),
		}); err != nil {
			return err
		}
	}
	trans, comp, qHat, n := learner.Estimates()
	fmt.Printf("learning phase: %d audits at t=%d, %d detections\n", n, probeT, detected)
	fmt.Printf("learned: C_trans ≈ %.0f bytes/sample, C_comp ≈ %.2fms/audit, q̂ ≈ %.3f\n",
		trans, comp/1e6, qHat)

	// Theorem 3 under different stakes: the optimal t grows with the loss
	// an undetected cheat would cause.
	fmt.Println("\nTheorem 3: optimal sample size by cheat-loss magnitude")
	fmt.Println("  cheat loss (cost units) | optimal t")
	for _, loss := range []float64{1e4, 1e6, 1e8, 1e10, 1e12} {
		tStar, err := learner.RecommendSampleSize(1, 1, 1, loss)
		if err != nil {
			return err
		}
		fmt.Printf("  %21.0e | %d\n", loss, tStar)
	}
	fmt.Println("\nreading: when an undetected cheat is cheap, auditing isn't worth the")
	fmt.Println("traffic; as the stakes grow, the cost-optimal audit samples more tasks.")
	return nil
}
