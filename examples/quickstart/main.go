// Command quickstart walks the complete SecCloud protocol once, honestly:
// system initialization, secure storage upload, a computing job with a
// Merkle commitment, delegation to the designated agency, and a sampled
// audit sized by the paper's uncheatability analysis.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"seccloud"
	"seccloud/internal/funcs"
	"seccloud/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. System initialization: the SIO generates master keys; every party
	// registers and receives its identity key. (Test parameters keep the
	// demo fast; switch to ParamSS512 for the real 80-bit setting.)
	sys, err := seccloud.NewSystem(seccloud.ParamInsecureTest256)
	if err != nil {
		return err
	}
	user, err := sys.NewUser("user:alice")
	if err != nil {
		return err
	}
	server, err := sys.NewServer("cs:server-1", seccloud.ServerConfig{VerifyOnStore: true})
	if err != nil {
		return err
	}
	auditor, err := sys.NewAuditor("da:tpa")
	if err != nil {
		return err
	}
	link := seccloud.Loopback(server)
	fmt.Println("① system initialized: user, cloud server, designated agency registered")

	// 2. Secure cloud storage: sign each block (designated to the server
	// and the DA) and upload.
	gen := seccloud.NewGenerator(42)
	const numBlocks = 32
	ds := gen.GenDataset(user.ID(), numBlocks, 16)
	req, err := user.PrepareStore(ds, server.ID(), auditor.ID())
	if err != nil {
		return err
	}
	if err := user.Store(link, req); err != nil {
		return err
	}
	st := link.Stats()
	fmt.Printf("② stored %d blocks (%d bytes on the wire, signatures verified by the server)\n",
		numBlocks, st.BytesSent)

	// 3. Secure cloud computation: ask for the sum of every block; the
	// server returns results plus a signed Merkle commitment root.
	job := workload.UniformJob(user.ID(), funcs.Spec{Name: "sum"}, numBlocks)
	resp, err := user.SubmitJob(link, "quickstart-job", job)
	if err != nil {
		return err
	}
	fmt.Printf("③ job executed: %d results, commitment root %x…\n", len(resp.Results), resp.Root[:8])

	// 4. Size the audit with the paper's analysis: how many samples to
	// push a cheater's success below ε = 10⁻⁴?
	t, err := seccloud.RequiredSampleSize(seccloud.SamplingParams{
		CSC: 0.5, SSC: 0.5, R: math.Inf(1),
	}, 1e-4)
	if err != nil {
		return err
	}
	fmt.Printf("④ sampling analysis: t = %d samples suffice for ε = 1e-4 (CSC = SSC = 0.5)\n", t)

	// 5. Delegate and audit (Algorithm 1 with batch verification).
	d, err := seccloud.Delegate(user, auditor.ID(), "quickstart-job", job, resp,
		time.Now().Add(time.Hour))
	if err != nil {
		return err
	}
	report, err := auditor.AuditJob(link, d, seccloud.AuditConfig{
		SampleSize:      t,
		BatchSignatures: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("⑤ audit over %d sampled sub-tasks: valid=%v (%.2fms, batched signature check)\n",
		report.SampleSize, report.Valid(), float64(report.Elapsed.Microseconds())/1000)
	if !report.Valid() {
		return fmt.Errorf("unexpected audit failures: %+v", report.Failures)
	}
	fmt.Println("done: storage and computation verified without recomputing the whole job")
	return nil
}
