// Command archive-audit demonstrates the storage-cheating model end to
// end (§III-B): a cloud archive holds a user's data under a Zipf-skewed
// access pattern; a rational semi-honest server silently deletes every
// block the trace never touched ("delete rarely access data files to
// reduce the storage cost"). The DA's sampled storage audits expose the
// deletion, and the user recovers by migrating the archive to a
// replacement provider that passes a full batched audit.
//
// Run with:
//
//	go run ./examples/archive-audit
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"seccloud"
	"seccloud/internal/workload"
)

const (
	numBlocks   = 100
	accessCount = 150
	zipfSkew    = 1.5
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "archive-audit:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := seccloud.NewSystem(seccloud.ParamInsecureTest256)
	if err != nil {
		return err
	}
	user, err := sys.NewUser("user:archivist")
	if err != nil {
		return err
	}
	auditor, err := sys.NewAuditor("da:tpa")
	if err != nil {
		return err
	}

	// Simulate the access history the rational cheater will exploit.
	gen := seccloud.NewGenerator(11)
	trace, err := gen.ZipfAccess(numBlocks, accessCount, zipfSkew)
	if err != nil {
		return err
	}
	cold := workload.ColdFraction(numBlocks, trace)
	fmt.Printf("archive of %d blocks; Zipf(%v) access trace touches %.0f%% — %.0f%% is cold\n",
		numBlocks, zipfSkew, (1-cold)*100, cold*100)

	// The server deletes exactly the cold set at upload time.
	server, err := sys.NewServer("cs:archive", seccloud.ServerConfig{
		VerifyOnStore: true,
		Policy:        seccloud.NewColdDataCheater(trace),
	})
	if err != nil {
		return err
	}
	link := seccloud.Loopback(server)
	fmt.Printf("server policy: %s\n", server.PolicyName())

	ds := gen.GenDataset(user.ID(), numBlocks, 8)
	req, err := user.PrepareStore(ds, server.ID(), auditor.ID())
	if err != nil {
		return err
	}
	if err := user.Store(link, req); err != nil {
		return err
	}
	fmt.Println("upload accepted — the deletion is invisible until someone audits")

	// Sampled storage audits with the batch verification path.
	warrant, err := user.Delegate(auditor.ID(), "", time.Now().Add(time.Hour))
	if err != nil {
		return err
	}
	for _, t := range []int{5, 10, 20} {
		report, err := auditor.AuditStorage(link, user.ID(), warrant, seccloud.StorageAuditConfig{
			DatasetSize:     numBlocks,
			SampleSize:      t,
			Rng:             rand.New(rand.NewSource(int64(t))),
			BatchSignatures: true,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  audit t=%2d: %d of %d sampled blocks failed signature checks\n",
			t, len(report.Failures), t)
		if t == 20 && report.Valid() {
			return fmt.Errorf("a 20%% sample missed a %.0f%% deletion — statistically implausible", cold*100)
		}
	}

	// Recovery: a repair sent to the still-cheating server would be
	// silently re-deleted (its policy runs on every store — try it and the
	// re-check fails again). The rational response after detection is
	// migration: re-upload to a fresh, honest server and confirm with a
	// full audit.
	fullReport, err := auditor.AuditStorage(link, user.ID(), warrant, seccloud.StorageAuditConfig{
		DatasetSize: numBlocks, SampleSize: numBlocks,
		Rng: rand.New(rand.NewSource(99)),
	})
	if err != nil {
		return err
	}
	fmt.Printf("full audit: %d of %d blocks gone — migrating to a new provider\n",
		len(fullReport.Failures), numBlocks)

	honest, err := sys.NewServer("cs:replacement", seccloud.ServerConfig{VerifyOnStore: true})
	if err != nil {
		return err
	}
	honestLink := seccloud.Loopback(honest)
	req2, err := user.PrepareStore(ds, honest.ID(), auditor.ID())
	if err != nil {
		return err
	}
	if err := user.Store(honestLink, req2); err != nil {
		return err
	}
	recheck, err := auditor.AuditStorage(honestLink, user.ID(), warrant, seccloud.StorageAuditConfig{
		DatasetSize: numBlocks, SampleSize: numBlocks,
		Rng:             rand.New(rand.NewSource(7)),
		BatchSignatures: true,
	})
	if err != nil {
		return err
	}
	if !recheck.Valid() {
		return fmt.Errorf("replacement server failed the audit: %d failures", len(recheck.Failures))
	}
	fmt.Println("replacement server passes a full batched audit — archive restored")
	return nil
}
