// Benchmarks regenerating the paper's evaluation (one family per table and
// figure), runnable with:
//
//	go test -bench=. -benchmem
//
// Table I  → BenchmarkTableI_*   (primitive op costs, SS512 like the paper)
// Table II → BenchmarkTableII_*  (individual vs batch verify, per scheme/τ)
// Figure 4 → BenchmarkFig4_*     (required-sample-size computation)
// Figure 5 → BenchmarkFig5_*     (DA batch verification vs user count)
//
// Protocol-level end-to-end costs (store / compute / audit) follow as
// BenchmarkProtocol_*. The heavier pairing-based benches use the fast
// InsecureTest256 parameters unless the name says SS512; ratios, not
// absolute times, carry the paper's claims.
package seccloud

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"testing"
	"time"

	"seccloud/internal/baseline"
	"seccloud/internal/curve"
	"seccloud/internal/dvs"
	"seccloud/internal/funcs"
	"seccloud/internal/pairing"
	"seccloud/internal/sampling"
	"seccloud/internal/workload"
)

// --- Table I: primitive operations on SS512 --------------------------------

func BenchmarkTableI_PointMul_SS512(b *testing.B) {
	pp := pairing.SS512()
	g := pp.G1()
	pt, _, err := g.RandPoint(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	k, err := g.Scalars().Rand(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ScalarMult(pt, k)
	}
}

func BenchmarkTableI_Pairing_SS512(b *testing.B) {
	pp := pairing.SS512()
	g := pp.G1()
	p1, _, err := g.RandPoint(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	p2, _, err := g.RandPoint(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.Pair(p1, p2)
	}
}

func BenchmarkTableI_HashToPoint_SS512(b *testing.B) {
	g := pairing.SS512().G1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HashToPoint("bench", []byte{byte(i), byte(i >> 8), byte(i >> 16)})
	}
}

// --- Table II: individual vs batch verification ----------------------------

// tableIIFixture prepares τ designated signatures for one verifier.
type tableIIFixture struct {
	scheme   *dvs.Scheme
	verifier *PrivateKey
	msgs     [][]byte
	sigs     []*dvs.Designated
}

func newTableIIFixture(b *testing.B, tau int) *tableIIFixture {
	b.Helper()
	sys, err := NewSystemDeterministic(ParamInsecureTest256, 1)
	if err != nil {
		b.Fatal(err)
	}
	scheme := sys.Scheme()
	verifier, err := sys.ExtractKey("da:bench")
	if err != nil {
		b.Fatal(err)
	}
	signer, err := sys.ExtractKey("user:bench")
	if err != nil {
		b.Fatal(err)
	}
	f := &tableIIFixture{scheme: scheme, verifier: verifier}
	for i := 0; i < tau; i++ {
		msg := []byte(fmt.Sprintf("bench message %d", i))
		ds, err := scheme.SignDesignated(signer, msg, rand.Reader, verifier.ID)
		if err != nil {
			b.Fatal(err)
		}
		f.msgs = append(f.msgs, msg)
		f.sigs = append(f.sigs, ds[0])
	}
	return f
}

func BenchmarkTableII_OursIndividual(b *testing.B) {
	for _, tau := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			f := newTableIIFixture(b, tau)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < tau; j++ {
					if err := f.scheme.Verify(f.sigs[j], f.msgs[j], f.verifier); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkTableII_OursBatch(b *testing.B) {
	for _, tau := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			f := newTableIIFixture(b, tau)
			items := make([]dvs.BatchItem, tau)
			for j := 0; j < tau; j++ {
				items[j] = dvs.NewBatchItem(f.msgs[j], f.sigs[j])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.scheme.BatchVerify(items, f.verifier); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTableII_RSAIndividual(b *testing.B) {
	for _, tau := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			s, err := baseline.NewRSASigner(rand.Reader, 1024)
			if err != nil {
				b.Fatal(err)
			}
			msgs := make([][]byte, tau)
			sigs := make([][]byte, tau)
			for j := range msgs {
				msgs[j] = []byte(fmt.Sprintf("rsa %d", j))
				if sigs[j], err = s.Sign(rand.Reader, msgs[j]); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < tau; j++ {
					if err := s.Verify(msgs[j], sigs[j]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkTableII_ECDSAIndividual(b *testing.B) {
	for _, tau := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			s, err := baseline.NewECDSASigner(rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			msgs := make([][]byte, tau)
			sigs := make([][]byte, tau)
			for j := range msgs {
				msgs[j] = []byte(fmt.Sprintf("ecdsa %d", j))
				if sigs[j], err = s.Sign(rand.Reader, msgs[j]); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < tau; j++ {
					if err := s.Verify(msgs[j], sigs[j]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkTableII_BGLSBatch(b *testing.B) {
	for _, tau := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			scheme := baseline.NewBGLS(pairing.InsecureTest256())
			msgs := make([][]byte, tau)
			keys := make([]*baseline.BGLSKey, tau)
			sigs := make([]*curve.Point, tau)
			for j := range msgs {
				msgs[j] = []byte(fmt.Sprintf("bgls %d", j))
				k, err := scheme.KeyGen(rand.Reader)
				if err != nil {
					b.Fatal(err)
				}
				keys[j] = k
				sigs[j] = scheme.Sign(k, msgs[j])
			}
			agg, err := scheme.Aggregate(msgs, sigs)
			if err != nil {
				b.Fatal(err)
			}
			pkArr := make([]*curve.Point, tau)
			for j := range keys {
				pkArr[j] = keys[j].PK
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := scheme.AggregateVerify(pkArr, msgs, agg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 4: required-sample-size computation -----------------------------

func BenchmarkFig4_RequiredSampleSize(b *testing.B) {
	p := sampling.Params{CSC: 0.5, SSC: 0.5, R: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.RequiredSampleSize(p, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_Surface(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.Fig4Surface(2, 1e-4, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5: DA batch verification vs user count --------------------------

func BenchmarkFig5_MultiUserBatchVerify(b *testing.B) {
	sys, err := NewSystemDeterministic(ParamInsecureTest256, 2)
	if err != nil {
		b.Fatal(err)
	}
	scheme := sys.Scheme()
	verifier, err := sys.ExtractKey("da:fig5")
	if err != nil {
		b.Fatal(err)
	}
	const maxUsers = 50
	items := make([]dvs.BatchItem, maxUsers)
	for i := 0; i < maxUsers; i++ {
		signer, err := sys.ExtractKey(fmt.Sprintf("user:%d", i))
		if err != nil {
			b.Fatal(err)
		}
		msg := []byte(fmt.Sprintf("session %d", i))
		ds, err := scheme.SignDesignated(signer, msg, rand.Reader, verifier.ID)
		if err != nil {
			b.Fatal(err)
		}
		items[i] = dvs.NewBatchItem(msg, ds[0])
	}
	for _, users := range []int{1, 10, 25, 50} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := scheme.BatchVerify(items[:users], verifier); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Protocol-level end-to-end costs ----------------------------------------

// protoFixture is a stored-and-computed honest deployment ready to audit.
type protoFixture struct {
	user    *User
	auditor *Auditor
	link    Client
	job     *Job
	d       *JobDelegation
}

func newProtoFixture(b *testing.B, blocks int) *protoFixture {
	b.Helper()
	sys, err := NewSystemDeterministic(ParamInsecureTest256, 3)
	if err != nil {
		b.Fatal(err)
	}
	user, err := sys.NewUser("user:bench")
	if err != nil {
		b.Fatal(err)
	}
	auditor, err := sys.NewAuditor("da:bench")
	if err != nil {
		b.Fatal(err)
	}
	server, err := sys.NewServer("cs:bench", ServerConfig{})
	if err != nil {
		b.Fatal(err)
	}
	link := Loopback(server)
	ds := NewGenerator(4).GenDataset(user.ID(), blocks, 16)
	req, err := user.PrepareStore(ds, server.ID(), auditor.ID())
	if err != nil {
		b.Fatal(err)
	}
	if err := user.Store(link, req); err != nil {
		b.Fatal(err)
	}
	job := workload.UniformJob(user.ID(), funcs.Spec{Name: "sum"}, blocks)
	resp, err := user.SubmitJob(link, "bench-job", job)
	if err != nil {
		b.Fatal(err)
	}
	d, err := Delegate(user, auditor.ID(), "bench-job", job, resp, time.Now().Add(24*time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	return &protoFixture{user: user, auditor: auditor, link: link, job: job, d: d}
}

func BenchmarkProtocol_SignBlock(b *testing.B) {
	sys, err := NewSystemDeterministic(ParamInsecureTest256, 5)
	if err != nil {
		b.Fatal(err)
	}
	user, err := sys.NewUser("user:s")
	if err != nil {
		b.Fatal(err)
	}
	block := NewGenerator(5).GenDataset(user.ID(), 1, 16).Blocks[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := user.SignBlock(uint64(i), block, "cs:s", "da:s"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocol_Audit(b *testing.B) {
	for _, t := range []int{1, 8, 16} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			f := newProtoFixture(b, 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := f.auditor.AuditJob(f.link, f.d, AuditConfig{
					SampleSize:      t,
					Rng:             mrand.New(mrand.NewSource(int64(i))),
					BatchSignatures: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !report.Valid() {
					b.Fatal("honest audit failed")
				}
			}
		})
	}
}

func BenchmarkProtocol_Compute(b *testing.B) {
	f := newProtoFixture(b, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.user.SubmitJob(f.link, fmt.Sprintf("rejob-%d", i), f.job); err != nil {
			b.Fatal(err)
		}
	}
}
