package seccloud_test

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"seccloud"
	"seccloud/internal/funcs"
	"seccloud/internal/workload"
)

// Example walks the full protocol: system initialization, secure storage,
// a computing job with a Merkle commitment, and a sampled audit.
func Example() {
	sys, err := seccloud.NewSystemDeterministic(seccloud.ParamInsecureTest256, 42)
	if err != nil {
		fmt.Println("setup:", err)
		return
	}
	user, _ := sys.NewUser("user:alice")
	server, _ := sys.NewServer("cs:1", seccloud.ServerConfig{VerifyOnStore: true})
	auditor, _ := sys.NewAuditor("da:tpa")
	link := seccloud.Loopback(server)

	ds := seccloud.NewGenerator(1).GenDataset(user.ID(), 8, 4)
	req, _ := user.PrepareStore(ds, server.ID(), auditor.ID())
	if err := user.Store(link, req); err != nil {
		fmt.Println("store:", err)
		return
	}

	job := workload.UniformJob(user.ID(), funcs.Spec{Name: "sum"}, 8)
	resp, err := user.SubmitJob(link, "job-1", job)
	if err != nil {
		fmt.Println("compute:", err)
		return
	}
	d, _ := seccloud.Delegate(user, auditor.ID(), "job-1", job, resp, time.Now().Add(time.Hour))
	report, err := auditor.AuditJob(link, d, seccloud.AuditConfig{
		SampleSize:      4,
		Rng:             rand.New(rand.NewSource(1)),
		BatchSignatures: true,
	})
	if err != nil {
		fmt.Println("audit:", err)
		return
	}
	fmt.Println("audit valid:", report.Valid())
	// Output: audit valid: true
}

// ExampleRequiredSampleSize reproduces the paper's Figure 4 spot values.
func ExampleRequiredSampleSize() {
	t33, _ := seccloud.RequiredSampleSize(
		seccloud.SamplingParams{CSC: 0.5, SSC: 0.5, R: 2}, 1e-4)
	t15, _ := seccloud.RequiredSampleSize(
		seccloud.SamplingParams{CSC: 0.5, SSC: 0.5, R: math.Inf(1)}, 1e-4)
	fmt.Println(t33, t15)
	// Output: 33 15
}

// ExampleOptimalSampleSize evaluates Theorem 3's cost-optimal audit size.
func ExampleOptimalSampleSize() {
	t, _ := seccloud.OptimalSampleSize(seccloud.CostParams{
		A1: 1, A2: 1, A3: 1,
		CTrans: 100, CComp: 10, CCheat: 1e6, Q: 0.5,
	})
	fmt.Println(t)
	// Output: 13
}

// ExampleWithParity shows the retrievability extension: erasure-coded
// archives recover deleted blocks from survivors.
func ExampleWithParity() {
	ds := seccloud.NewGenerator(2).GenDataset("user:alice", 4, 4)
	coded, coder, _ := seccloud.WithParity(ds, 2)

	// Lose two blocks, recover both.
	shards := make([][]byte, len(coded.Blocks))
	copy(shards, coded.Blocks)
	shards[1], shards[3] = nil, nil
	if err := seccloud.RecoverDataset(coder, shards); err != nil {
		fmt.Println("recover:", err)
		return
	}
	fmt.Println("recovered:",
		string(shards[1]) == string(coded.Blocks[1]) &&
			string(shards[3]) == string(coded.Blocks[3]))
	// Output: recovered: true
}
