# SecCloud build/verify targets.
#
# `make check` is the tier-1 gate with the race detector wired in:
# vet + build + race-enabled tests across every package.

GO ?= go

.PHONY: check build test race vet fuzz bench

check: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz pass over the wire codec (the corruption injector's attack
# surface); extend -fuzztime locally for deeper runs.
fuzz:
	$(GO) test ./internal/wire -fuzz FuzzDecode -fuzztime 10s
	$(GO) test ./internal/wire -fuzz FuzzReadMessage -fuzztime 10s

bench:
	$(GO) test -bench . -benchtime 1x ./...
