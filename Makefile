# SecCloud build/verify targets.
#
# `make check` is the tier-1 gate with the race detector wired in:
# vet + build + race-enabled tests across every package.

GO ?= go

.PHONY: check build test race vet fuzz bench bench-audit bench-recovery bench-fleet bench-overload bench-multitenant bench-threshold bench-chaos bench-daemon

check: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz pass over the wire codec (the corruption injector's attack
# surface), the WAL record decoder (what a torn or bit-rotted log feeds
# into recovery) and the snapshot decoder (what a FaultFS-rotted snapshot
# file feeds into it); extend -fuzztime locally for deeper runs.
fuzz:
	$(GO) test ./internal/wire -fuzz FuzzDecode -fuzztime 10s
	$(GO) test ./internal/wire -fuzz FuzzReadMessage -fuzztime 10s
	$(GO) test ./internal/wire -fuzz FuzzHandshake -fuzztime 10s
	$(GO) test ./internal/store -fuzz FuzzReadRecord -fuzztime 10s
	$(GO) test ./internal/store -fuzz FuzzDecodeSnapshot -fuzztime 10s
	$(GO) test ./internal/core -fuzz FuzzDecodeEvidence -fuzztime 10s

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Audit-pipeline benchmarks: worker-pool scaling on a latent link, the
# O(t) sampler's allocations, and the fixed-argument pairing cache.
# Refreshes BENCH_parallel_audit.json via the seccloud-bench harness.
bench-audit:
	$(GO) test -run '^$$' -bench 'BenchmarkAuditPipeline|BenchmarkSampleIndices' -benchmem -benchtime 3x ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkPairPrecomp' -benchmem ./internal/pairing
	$(GO) test -run '^$$' -bench 'BenchmarkVerifyDesignated' -benchmem ./internal/dvs
	$(GO) run ./cmd/seccloud-bench -exp parallel-audit -params test256 -json BENCH_parallel_audit.json

# Crash-recovery benchmark: WAL restart time vs dataset size plus the
# four-point crash matrix with post-restart audits. Refreshes
# BENCH_crash_recovery.json.
bench-recovery:
	$(GO) run ./cmd/seccloud-bench -exp crash-recovery -params test256 -json BENCH_crash_recovery.json

# Fleet-robustness benchmark: audit availability vs killed replicas (with
# the no-failover analytic baseline) plus audit-driven repair latency vs
# corruption size. Refreshes BENCH_fleet_failover.json.
bench-fleet:
	$(GO) run ./cmd/seccloud-bench -exp fleet-failover -params test256 -json BENCH_fleet_failover.json

# Overload benchmark: goodput, tail latency, and audit integrity under an
# open-loop storm at 1x/2x/4x capacity, bounded LIFO admission vs the
# unbounded FIFO baseline, plus the hedged-round contrast. Refreshes
# BENCH_overload.json.
bench-overload:
	$(GO) run ./cmd/seccloud-bench -exp overload -params test256 -json BENCH_overload.json

# Multi-tenant benchmark: cross-user aggregate verification vs the
# per-user baseline across 10⁵–10⁶ registered identities under Zipf
# traffic, plus the determinism and blame-attribution cells. Refreshes
# BENCH_multitenant.json.
bench-multitenant:
	$(GO) run ./cmd/seccloud-bench -exp multitenant -params test256 -json BENCH_multitenant.json

# Threshold-agency benchmark: t-of-n audit quorums under rotating crash
# and Byzantine fault schedules, cross-checked against a single-DA
# reference (zero false flags, zero verdict mismatches). Refreshes
# BENCH_threshold.json.
bench-threshold:
	$(GO) run ./cmd/seccloud-bench -exp threshold -params test256 -json BENCH_threshold.json

# Chaos benchmark: 200 seeded composed disk/network/clock/process fault
# schedules checked by the invariant engine against fault-free reference
# replays (zero false flags, every invariant green, every real cheater
# detected), plus the shrinker demonstration that a planted violation
# minimizes to a byte-identical one-line repro. The acceptance gate is
# enforced: any failure exits nonzero. Refreshes BENCH_chaos.json.
bench-chaos:
	$(GO) run ./cmd/seccloud-bench -exp chaos -params test256 -json BENCH_chaos.json

# Daemon benchmark: real localhost TCP/TLS fleet under 50 ms simulated
# RTT — streamed challenge pipelining vs sequential rounds (gate: >= 1.5x
# throughput), graceful drain with every in-flight audit completing, zero
# false flags, byte-identical verdicts on netsim vs daemon transport, and
# the mutual-TLS identity cells. The acceptance gate is enforced: any
# failure exits nonzero. Refreshes BENCH_daemon.json.
bench-daemon:
	$(GO) run ./cmd/seccloud-bench -exp daemon -params test256 -json BENCH_daemon.json
