// Command seccloud-paramgen generates pairing parameters for the
// supersingular curve y² = x³ + x used by SecCloud: a subgroup prime q, a
// field prime p = h·q − 1 with p ≡ 3 (mod 4), and a generator of the
// order-q subgroup. The built-in SS512 and InsecureTest256 sets were
// produced by this tool.
//
// Usage:
//
//	seccloud-paramgen -pbits 512 -qbits 160
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"math/big"
	"os"

	"seccloud/internal/ff"
	"seccloud/internal/pairing"
)

func main() {
	pbits := flag.Int("pbits", 512, "field prime size in bits")
	qbits := flag.Int("qbits", 160, "subgroup order size in bits")
	flag.Parse()
	if err := run(*pbits, *qbits); err != nil {
		fmt.Fprintln(os.Stderr, "seccloud-paramgen:", err)
		os.Exit(1)
	}
}

func run(pbits, qbits int) error {
	if qbits < 16 || pbits-qbits < 16 {
		return fmt.Errorf("need qbits ≥ 16 and pbits−qbits ≥ 16 (got %d/%d)", pbits, qbits)
	}
	q, err := rand.Prime(rand.Reader, qbits)
	if err != nil {
		return fmt.Errorf("sampling subgroup prime: %w", err)
	}

	// Find h = 4c with p = h·q − 1 prime and the right size. p ≡ 3 (mod 4)
	// follows from 4 | h and q odd.
	hbits := pbits - qbits
	one := big.NewInt(1)
	var p, h *big.Int
	for {
		c, err := rand.Int(rand.Reader, new(big.Int).Lsh(one, uint(hbits-2)))
		if err != nil {
			return fmt.Errorf("sampling cofactor: %w", err)
		}
		cand := new(big.Int).Lsh(c, 2)
		if cand.BitLen() < hbits-1 {
			continue
		}
		pc := new(big.Int).Mul(cand, q)
		pc.Sub(pc, one)
		if pc.BitLen() != pbits || !pc.ProbablyPrime(64) {
			continue
		}
		p, h = pc, cand
		break
	}

	// Find a generator: lift a small x to a curve point, clear the
	// cofactor, confirm the order. Plain affine arithmetic suffices for a
	// one-off search.
	fp, err := ff.NewCtx(p)
	if err != nil {
		return err
	}
	var gx, gy *big.Int
	for x := int64(2); ; x++ {
		xb := big.NewInt(x)
		rhs := new(big.Int).Mul(xb, xb)
		rhs.Mul(rhs, xb)
		rhs.Add(rhs, xb)
		rhs.Mod(rhs, p)
		y, ok := fp.Sqrt(rhs)
		if !ok {
			continue
		}
		cx, cy, inf := scalarMult(p, xb, y, h)
		if inf {
			continue
		}
		if _, _, isInf := scalarMult(p, cx, cy, q); !isInf {
			continue
		}
		gx, gy = cx, cy
		break
	}

	// Validate end-to-end through the pairing constructor.
	if _, err := pairing.New("generated", p, q, h, gx, gy); err != nil {
		return fmt.Errorf("generated parameters failed validation: %w", err)
	}
	fmt.Printf("q  = %s\n", q.Text(16))
	fmt.Printf("h  = %s\n", h.Text(16))
	fmt.Printf("p  = %s\n", p.Text(16))
	fmt.Printf("gx = %s\n", gx.Text(16))
	fmt.Printf("gy = %s\n", gy.Text(16))
	return nil
}

// scalarMult computes k·(x, y) on y² = x³ + x over Fp in affine
// coordinates, returning (x', y', atInfinity).
func scalarMult(p, x, y, k *big.Int) (*big.Int, *big.Int, bool) {
	rx, ry, rInf := new(big.Int), new(big.Int), true
	ax, ay := new(big.Int).Set(x), new(big.Int).Set(y)
	aInf := false
	for i := 0; i < k.BitLen(); i++ {
		if k.Bit(i) == 1 {
			rx, ry, rInf = addAffine(p, rx, ry, rInf, ax, ay, aInf)
		}
		ax, ay, aInf = addAffine(p, ax, ay, aInf, ax, ay, aInf)
	}
	return rx, ry, rInf
}

// addAffine adds two affine points (with infinity flags) on y² = x³ + x.
func addAffine(p, x1, y1 *big.Int, inf1 bool, x2, y2 *big.Int, inf2 bool) (*big.Int, *big.Int, bool) {
	if inf1 {
		return new(big.Int).Set(x2), new(big.Int).Set(y2), inf2
	}
	if inf2 {
		return new(big.Int).Set(x1), new(big.Int).Set(y1), inf1
	}
	var lambda *big.Int
	if x1.Cmp(x2) == 0 {
		ysum := new(big.Int).Add(y1, y2)
		ysum.Mod(ysum, p)
		if ysum.Sign() == 0 {
			return new(big.Int), new(big.Int), true
		}
		num := new(big.Int).Mul(x1, x1)
		num.Mul(num, big.NewInt(3))
		num.Add(num, big.NewInt(1))
		den := new(big.Int).Lsh(y1, 1)
		den.ModInverse(den, p)
		lambda = num.Mul(num, den)
	} else {
		num := new(big.Int).Sub(y2, y1)
		den := new(big.Int).Sub(x2, x1)
		den.Mod(den, p)
		den.ModInverse(den, p)
		lambda = num.Mul(num, den)
	}
	lambda.Mod(lambda, p)
	x3 := new(big.Int).Mul(lambda, lambda)
	x3.Sub(x3, x1)
	x3.Sub(x3, x2)
	x3.Mod(x3, p)
	y3 := new(big.Int).Sub(x1, x3)
	y3.Mul(y3, lambda)
	y3.Sub(y3, y1)
	y3.Mod(y3, p)
	return x3, y3, false
}
