package main

import (
	"encoding/json"
	"fmt"
	"os"

	"seccloud/internal/experiments"
	"seccloud/internal/obs"
)

// chaosScenario: 200 distinct seeded composed-fault schedules (every
// third one carrying a real cheating replica), each checked by the full
// invariant engine against a fault-free reference replay, plus one
// deliberately-broken schedule for the shrinker to minimize.
var chaosScenario = experiments.ChaosExpConfig{
	Runs:        200,
	BaseSeed:    1,
	TamperEvery: 3,
	ShrinkSeed:  31,
}

// chaosJSON is the BENCH_chaos.json shape.
type chaosJSON struct {
	Experiment string `json:"experiment"`
	Runs       []struct {
		Seed        int64    `json:"seed"`
		Steps       int      `json:"steps"`
		Ops         int      `json:"ops"`
		OpsFailed   int      `json:"ops_failed"`
		Audits      int      `json:"audits"`
		FalseFlags  int      `json:"false_flags"`
		Accusations int      `json:"accusations"`
		Tampered    bool     `json:"tampered"`
		Detected    bool     `json:"detected"`
		LostRounds  int      `json:"lost_rounds"`
		Failovers   int      `json:"failovers"`
		AuditErrors int      `json:"audit_errors"`
		DiskFaults  int64    `json:"disk_faults"`
		NetDrops    int64    `json:"net_drops"`
		Violations  []string `json:"violations,omitempty"`
		ElapsedMS   float64  `json:"elapsed_ms"`
	} `json:"runs"`
	// Shrink is the known-violation demonstration: the minimal
	// reproducer and proof it re-fails byte-for-byte.
	Shrink struct {
		Schedule      string `json:"schedule"`
		Minimal       string `json:"minimal"`
		Invariant     string `json:"invariant"`
		Repro         string `json:"repro"`
		StepsBefore   int    `json:"steps_before"`
		StepsAfter    int    `json:"steps_after"`
		SearchRuns    int    `json:"search_runs"`
		ByteIdentical bool   `json:"byte_identical"`
	} `json:"shrink"`
	// Summary holds the acceptance figures: zero false flags, zero
	// invariant violations, every tampered schedule detected.
	Summary struct {
		Runs         int   `json:"runs"`
		TamperedRuns int   `json:"tampered_runs"`
		DetectedRuns int   `json:"detected_runs"`
		FalseFlags   int   `json:"false_flags"`
		Violations   int   `json:"violations"`
		Ops          int   `json:"ops"`
		OpsFailed    int   `json:"ops_failed"`
		Audits       int   `json:"audits"`
		AuditErrors  int   `json:"audit_errors"`
		DiskFaults   int64 `json:"disk_faults"`
		NetDrops     int64 `json:"net_drops"`
	} `json:"summary"`
	Metrics obs.Snapshot `json:"metrics"`
}

func (r *runner) chaos() error {
	r.header("Chaos — seeded composed-fault schedules vs the invariant engine")
	cfg := chaosScenario
	hub := r.expHub()
	cfg.Hub = hub
	rows, shrink, sum, err := experiments.Chaos(cfg)
	if err != nil {
		return err
	}

	if r.csv {
		fmt.Println("chaos,seed,steps,ops,ops_failed,audits,false_flags,accusations,tampered,detected,lost_rounds,failovers,audit_errors,disk_faults,net_drops,violations,elapsed_ms")
		for _, row := range rows {
			fmt.Printf("chaos,%d,%d,%d,%d,%d,%d,%d,%v,%v,%d,%d,%d,%d,%d,%d,%s\n",
				row.Seed, row.Steps, row.Ops, row.OpsFailed, row.Audits,
				row.FalseFlags, row.Accusations, row.Tampered, row.Detected,
				row.LostRounds, row.Failovers, row.AuditErrors,
				row.DiskFaults, row.NetDrops, len(row.Violations), ms(row.Elapsed))
		}
	} else {
		fmt.Printf("%d seeded schedules (seeds %d..%d), every %drd with a real cheating replica\n\n",
			sum.Runs, chaosScenario.BaseSeed, chaosScenario.BaseSeed+int64(sum.Runs)-1, chaosScenario.TamperEvery)
		fmt.Printf("%12s %10s %12s %12s %12s %12s\n",
			"ops", "failed", "audits", "disk faults", "net drops", "audit errs")
		fmt.Printf("%12d %10d %12d %12d %12d %12d\n",
			sum.Ops, sum.OpsFailed, sum.Audits, sum.DiskFaults, sum.NetDrops, sum.AuditErrors)
		fmt.Printf("\nfalse flags: %d   invariant violations: %d   tampered schedules detected: %d/%d\n",
			sum.FalseFlags, sum.Violations, sum.DetectedRuns, sum.TamperedRuns)
		for _, row := range rows {
			for _, v := range row.Violations {
				fmt.Printf("  seed %d: %s\n", row.Seed, v)
			}
		}
		fmt.Printf("\nshrink demo: %d steps -> %d (%s, %d search runs, byte-identical replay: %v)\n",
			shrink.StepsBefore, shrink.StepsAfter, shrink.Invariant, shrink.Runs, shrink.ByteIdentical)
		fmt.Printf("  noisy:   %s\n  minimal: %s\n  repro:   %s\n",
			shrink.Schedule, shrink.Minimal, shrink.Repro)
		fmt.Println("\nreading: weather (disk, network, clock, process faults) may slow the fleet")
		fmt.Println("down but never changes what the DA concludes — accusations happen exactly")
		fmt.Println("when a replica really cheats, acked writes survive every recovery, and any")
		fmt.Println("engine failure shrinks to a one-line seeded reproducer.")
	}

	if r.jsonOut != "" {
		var out chaosJSON
		out.Experiment = "chaos"
		for _, row := range rows {
			out.Runs = append(out.Runs, struct {
				Seed        int64    `json:"seed"`
				Steps       int      `json:"steps"`
				Ops         int      `json:"ops"`
				OpsFailed   int      `json:"ops_failed"`
				Audits      int      `json:"audits"`
				FalseFlags  int      `json:"false_flags"`
				Accusations int      `json:"accusations"`
				Tampered    bool     `json:"tampered"`
				Detected    bool     `json:"detected"`
				LostRounds  int      `json:"lost_rounds"`
				Failovers   int      `json:"failovers"`
				AuditErrors int      `json:"audit_errors"`
				DiskFaults  int64    `json:"disk_faults"`
				NetDrops    int64    `json:"net_drops"`
				Violations  []string `json:"violations,omitempty"`
				ElapsedMS   float64  `json:"elapsed_ms"`
			}{
				Seed: row.Seed, Steps: row.Steps, Ops: row.Ops, OpsFailed: row.OpsFailed,
				Audits: row.Audits, FalseFlags: row.FalseFlags, Accusations: row.Accusations,
				Tampered: row.Tampered, Detected: row.Detected,
				LostRounds: row.LostRounds, Failovers: row.Failovers, AuditErrors: row.AuditErrors,
				DiskFaults: row.DiskFaults, NetDrops: row.NetDrops, Violations: row.Violations,
				ElapsedMS: float64(row.Elapsed.Nanoseconds()) / 1e6,
			})
		}
		out.Shrink.Schedule = shrink.Schedule
		out.Shrink.Minimal = shrink.Minimal
		out.Shrink.Invariant = shrink.Invariant
		out.Shrink.Repro = shrink.Repro
		out.Shrink.StepsBefore = shrink.StepsBefore
		out.Shrink.StepsAfter = shrink.StepsAfter
		out.Shrink.SearchRuns = shrink.Runs
		out.Shrink.ByteIdentical = shrink.ByteIdentical
		out.Summary.Runs = sum.Runs
		out.Summary.TamperedRuns = sum.TamperedRuns
		out.Summary.DetectedRuns = sum.DetectedRuns
		out.Summary.FalseFlags = sum.FalseFlags
		out.Summary.Violations = sum.Violations
		out.Summary.Ops = sum.Ops
		out.Summary.OpsFailed = sum.OpsFailed
		out.Summary.Audits = sum.Audits
		out.Summary.AuditErrors = sum.AuditErrors
		out.Summary.DiskFaults = sum.DiskFaults
		out.Summary.NetDrops = sum.NetDrops
		out.Metrics = hub.Registry().Snapshot()

		raw, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(r.jsonOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", r.jsonOut)
	}

	// The acceptance gate is enforced, not just reported: a sweep with a
	// false flag, a broken invariant, an undetected cheater or a
	// non-reproducing shrink fails the bench.
	switch {
	case sum.FalseFlags > 0:
		return fmt.Errorf("chaos: %d false flags across the sweep", sum.FalseFlags)
	case sum.Violations > 0:
		return fmt.Errorf("chaos: %d invariant violations across the sweep", sum.Violations)
	case sum.DetectedRuns != sum.TamperedRuns:
		return fmt.Errorf("chaos: only %d of %d tampered schedules detected the cheater",
			sum.DetectedRuns, sum.TamperedRuns)
	case shrink.StepsAfter >= shrink.StepsBefore:
		return fmt.Errorf("chaos: shrinker removed nothing (%d -> %d steps)",
			shrink.StepsBefore, shrink.StepsAfter)
	case !shrink.ByteIdentical:
		return fmt.Errorf("chaos: minimal reproducer did not re-fail byte-for-byte")
	}
	return nil
}
