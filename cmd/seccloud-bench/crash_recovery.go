package main

import (
	"encoding/json"
	"fmt"
	"os"

	"seccloud/internal/experiments"
	"seccloud/internal/obs"
)

// crashRecoveryScenario: recovery time for growing datasets, plus the
// four-point crash matrix with post-restart audits.
var crashRecoveryScenario = experiments.CrashRecoveryConfig{
	BlockCounts:   []int{100, 250, 500, 1000},
	SampleSize:    50,
	SnapshotEvery: 64,
	Seed:          1,
}

// crashRecoveryJSON is the BENCH_crash_recovery.json shape.
type crashRecoveryJSON struct {
	Experiment string `json:"experiment"`
	Params     string `json:"params"`
	Recovery   []struct {
		Blocks     int     `json:"blocks"`
		WALRecords int     `json:"wal_records"`
		RecoveryMS float64 `json:"recovery_ms"`
		AuditValid bool    `json:"audit_valid"`
	} `json:"recovery"`
	CrashMatrix []struct {
		Point             string `json:"point"`
		TornTail          bool   `json:"torn_tail"`
		MutationDurable   bool   `json:"mutation_durable"`
		JobAuditValid     bool   `json:"job_audit_valid"`
		StorageAuditValid bool   `json:"storage_audit_valid"`
	} `json:"crash_matrix"`
	// Metrics is the registry snapshot after the run: WAL append/fsync/
	// replay counters and audit instrumentation for every restart.
	Metrics obs.Snapshot `json:"metrics"`
}

func (r *runner) crashRecovery() error {
	r.header("Crash recovery — WAL restart time and post-crash audit survival")
	cfg := crashRecoveryScenario
	hub := r.expHub()
	cfg.Hub = hub
	sweep, matrix, err := experiments.CrashRecovery(r.pp, cfg)
	if err != nil {
		return err
	}

	if r.csv {
		fmt.Println("crashrecovery,blocks,wal_records,recovery_ms,audit_valid")
		for _, row := range sweep {
			fmt.Printf("crashrecovery,%d,%d,%s,%v\n", row.Blocks, row.WALRecords, ms(row.Recovery), row.AuditValid)
		}
		fmt.Println("crashmatrix,point,torn_tail,mutation_durable,job_audit_valid,storage_audit_valid")
		for _, row := range matrix {
			fmt.Printf("crashmatrix,%s,%v,%v,%v,%v\n", row.Point, row.TornTail,
				row.MutationDurable, row.JobAuditValid, row.StorageAuditValid)
		}
	} else {
		fmt.Printf("%8s %12s %15s %12s\n", "blocks", "wal records", "recovery (ms)", "audit valid")
		for _, row := range sweep {
			fmt.Printf("%8d %12d %15s %12v\n", row.Blocks, row.WALRecords, ms(row.Recovery), row.AuditValid)
		}
		fmt.Printf("\n%14s %10s %17s %16s %20s\n", "crash point", "torn tail", "mutation durable", "job audit valid", "storage audit valid")
		for _, row := range matrix {
			fmt.Printf("%14s %10v %17v %16v %20v\n", row.Point, row.TornTail,
				row.MutationDurable, row.JobAuditValid, row.StorageAuditValid)
		}
		fmt.Println("\nreading: recovery rebuilds Merkle trees and cross-checks signed roots, so it")
		fmt.Println("scales with logged state; every crash point must end in passing audits.")
	}

	if r.jsonOut == "" {
		return nil
	}
	var out crashRecoveryJSON
	out.Experiment = "crash-recovery"
	out.Params = r.pp.Name()
	for _, row := range sweep {
		out.Recovery = append(out.Recovery, struct {
			Blocks     int     `json:"blocks"`
			WALRecords int     `json:"wal_records"`
			RecoveryMS float64 `json:"recovery_ms"`
			AuditValid bool    `json:"audit_valid"`
		}{row.Blocks, row.WALRecords, float64(row.Recovery.Nanoseconds()) / 1e6, row.AuditValid})
	}
	for _, row := range matrix {
		out.CrashMatrix = append(out.CrashMatrix, struct {
			Point             string `json:"point"`
			TornTail          bool   `json:"torn_tail"`
			MutationDurable   bool   `json:"mutation_durable"`
			JobAuditValid     bool   `json:"job_audit_valid"`
			StorageAuditValid bool   `json:"storage_audit_valid"`
		}{row.Point, row.TornTail, row.MutationDurable, row.JobAuditValid, row.StorageAuditValid})
	}
	out.Metrics = hub.Registry().Snapshot()
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(r.jsonOut, append(data, '\n'), 0o644)
}
