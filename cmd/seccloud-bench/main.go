// Command seccloud-bench regenerates the paper's evaluation tables and
// figures from this implementation.
//
// Usage:
//
//	seccloud-bench -exp all                # everything (default)
//	seccloud-bench -exp table1             # primitive op times
//	seccloud-bench -exp table2             # individual vs batch verify
//	seccloud-bench -exp fig4               # sample-size surface
//	seccloud-bench -exp fig5               # verify cost vs users
//	seccloud-bench -exp detection          # Monte-Carlo vs eq. 10
//	seccloud-bench -exp optimal-t          # Theorem 3 sweep
//	seccloud-bench -exp parallel-audit     # audit pipeline scaling vs workers
//	seccloud-bench -exp crash-recovery     # WAL restart time + crash matrix
//	seccloud-bench -exp fleet-failover     # audit availability under outages + repair latency
//	seccloud-bench -exp overload           # goodput + audit integrity under an open-loop storm
//	seccloud-bench -exp multitenant        # cross-user aggregate verification at 10⁵–10⁶ users
//	seccloud-bench -exp threshold          # t-of-n audit quorums under crashes and Byzantine partials
//	seccloud-bench -exp chaos              # seeded composed-fault schedules vs the invariant engine
//	seccloud-bench -exp daemon             # daemon mode: TLS sockets, pooling, streamed pipelining
//	seccloud-bench -params ss512           # use the full-size pairing
//	seccloud-bench -csv                    # machine-readable output
//	seccloud-bench -exp parallel-audit -json BENCH_parallel_audit.json
//	seccloud-bench -admin 127.0.0.1:6060   # scrape /metrics while experiments run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"seccloud/internal/epoch"
	"seccloud/internal/experiments"
	"seccloud/internal/obs"
	"seccloud/internal/pairing"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|fig4|fig5|detection|optimal-t|traffic|epochs|parallel-audit|crash-recovery|fleet-failover|overload|multitenant|threshold|chaos|daemon|all")
	params := flag.String("params", "ss512", "pairing parameter set: ss512|test256")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	iters := flag.Int("iters", 10, "calibration iterations for op timing")
	trials := flag.Int("trials", 200, "Monte-Carlo trials per detection row")
	workers := flag.Int("workers", 8, "max worker-pool size for the parallel-audit experiment")
	jsonOut := flag.String("json", "", "also write parallel-audit results to this JSON file")
	admin := flag.String("admin", "", "serve /metrics, /traces, /healthz and pprof on this address while experiments run (empty = off)")
	flag.Parse()

	pp, err := pairing.ByName(*params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seccloud-bench:", err)
		os.Exit(1)
	}
	r := &runner{pp: pp, csv: *csv, iters: *iters, trials: *trials,
		workers: *workers, jsonOut: *jsonOut}

	var adminSrv *obs.AdminServer
	if *admin != "" {
		hub := obs.NewHub()
		srv, err := hub.ListenAndServe(*admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seccloud-bench:", err)
			os.Exit(1)
		}
		adminSrv = srv
		r.adminHub = hub
		fmt.Printf("admin endpoint listening on http://%s/metrics\n", srv.Addr())
	}

	var runErr error
	switch *exp {
	case "table1":
		runErr = r.table1()
	case "table2":
		runErr = r.table2()
	case "fig4":
		runErr = r.fig4()
	case "fig5":
		runErr = r.fig5()
	case "detection":
		runErr = r.detection()
	case "optimal-t":
		runErr = r.optimalT()
	case "traffic":
		runErr = r.traffic()
	case "epochs":
		runErr = r.epochs()
	case "parallel-audit":
		runErr = r.parallelAudit()
	case "crash-recovery":
		runErr = r.crashRecovery()
	case "fleet-failover":
		runErr = r.fleetFailover()
	case "overload":
		runErr = r.overload()
	case "multitenant":
		runErr = r.multitenant()
	case "threshold":
		runErr = r.threshold()
	case "chaos":
		runErr = r.chaos()
	case "daemon":
		runErr = r.daemon()
	case "all":
		for _, f := range []func() error{
			r.table1, r.table2, r.fig4, r.fig5, r.detection, r.optimalT, r.traffic, r.epochs,
			r.parallelAudit, r.crashRecovery, r.fleetFailover, r.overload, r.multitenant, r.threshold,
			r.chaos, r.daemon,
		} {
			if runErr = f(); runErr != nil {
				break
			}
		}
	default:
		runErr = fmt.Errorf("unknown experiment %q", *exp)
	}
	if adminSrv != nil {
		_ = adminSrv.Close()
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "seccloud-bench:", runErr)
		os.Exit(1)
	}
}

type runner struct {
	pp      *pairing.Params
	csv     bool
	iters   int
	trials  int
	workers int
	jsonOut string
	// adminHub is non-nil when -admin is serving; experiments then share
	// it so a live scrape sees them all.
	adminHub *obs.Hub
}

// expHub returns the metrics hub for one experiment run: the shared admin
// hub when -admin is serving, otherwise a fresh private hub so each
// BENCH_*.json metrics section covers exactly its own experiment.
func (r *runner) expHub() *obs.Hub {
	if r.adminHub != nil {
		return r.adminHub
	}
	return obs.NewHub()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}

func (r *runner) header(title string) {
	if !r.csv {
		fmt.Printf("\n=== %s (params: %s) ===\n", title, r.pp.Name())
	}
}

func (r *runner) table1() error {
	r.header("Table I — cryptographic operation execution time")
	rows, err := experiments.Table1(r.pp, r.iters)
	if err != nil {
		return err
	}
	if r.csv {
		fmt.Println("table1,op,measured_ms,paper_ms")
		for _, row := range rows {
			fmt.Printf("table1,%s,%s,%s\n", row.Op, ms(row.Measured), ms(row.Paper))
		}
		return nil
	}
	fmt.Printf("%-34s %14s %16s\n", "operation", "measured (ms)", "paper 2010 (ms)")
	for _, row := range rows {
		paper := "-"
		if row.Paper > 0 {
			paper = ms(row.Paper)
		}
		fmt.Printf("%-34s %14s %16s\n", row.Op, ms(row.Measured), paper)
	}
	return nil
}

func (r *runner) table2() error {
	r.header("Table II — individual vs batch verification")
	taus := []int{1, 5, 10, 25, 50}
	rows, err := experiments.Table2(r.pp, taus)
	if err != nil {
		return err
	}
	if r.csv {
		fmt.Println("table2,scheme,batch_size,individual_ms,batch_ms,pairings_individual,pairings_batch")
		for _, row := range rows {
			fmt.Printf("table2,%s,%d,%s,%s,%d,%d\n", row.Scheme, row.BatchSize,
				ms(row.Individual), ms(row.Batch), row.PairsIndiv, row.PairsBatch)
		}
		return nil
	}
	fmt.Printf("%-18s %6s %18s %14s %12s\n", "scheme", "τ", "individual (ms)", "batch (ms)", "pairings")
	for _, row := range rows {
		batch, pairs := "n/a", "n/a"
		if row.Batch > 0 {
			batch = ms(row.Batch)
			pairs = fmt.Sprintf("%d→%d", row.PairsIndiv, row.PairsBatch)
		}
		fmt.Printf("%-18s %6d %18s %14s %12s\n", row.Scheme, row.BatchSize, ms(row.Individual), batch, pairs)
	}
	fmt.Println("paper claim (pairing counts): ours 2τ→2 flat; BGLS 2τ→τ+1; wall-clock adds the")
	fmt.Println("linear point-mul/hash terms the paper's model omits, so measured batch grows mildly")
	return nil
}

func (r *runner) fig4() error {
	r.header("Figure 4 — required sample size for ε = 1e-4")
	for _, rr := range []float64{2, 1e9} {
		label := fmt.Sprintf("R = %.0f", rr)
		if rr >= 1e9 {
			label = "R → ∞"
		}
		header, rows, err := experiments.Fig4(rr, 1e-4, 0.1)
		if err != nil {
			return err
		}
		if r.csv {
			for _, row := range rows {
				fmt.Printf("fig4,%s,SSC=%s,%s\n", label, row.SSC, strings.Join(row.Values, ","))
			}
			continue
		}
		fmt.Printf("\n-- %s --\n%8s", label, "SSC\\CSC")
		for _, h := range header {
			fmt.Printf("%9s", strings.TrimPrefix(h, "CSC="))
		}
		fmt.Println()
		for _, row := range rows {
			fmt.Printf("%8s", row.SSC)
			for _, v := range row.Values {
				fmt.Printf("%9s", v)
			}
			fmt.Println()
		}
	}
	if !r.csv {
		fmt.Println("\npaper spot checks: t = 33 at CSC = SSC = 0.5, R = 2; t = 15 as R → ∞")
	}
	return nil
}

func (r *runner) fig5() error {
	r.header("Figure 5 — DA verification cost vs number of cloud users")
	users := []int{1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
	rows, err := experiments.Fig5(r.pp, users, r.iters)
	if err != nil {
		return err
	}
	if r.csv {
		fmt.Println("fig5,users,ours_measured_ms,ours_model_ms,wang09_model_ms,wang10_model_ms")
		for _, row := range rows {
			fmt.Printf("fig5,%d,%s,%s,%s,%s\n", row.Users, ms(row.OursMeasured),
				ms(row.OursModel), ms(row.Wang09Model), ms(row.Wang10Model))
		}
		return nil
	}
	fmt.Printf("%6s %17s %15s %16s %16s %10s\n",
		"users", "ours meas. (ms)", "ours mdl (ms)", "[5]'09 mdl (ms)", "[4]'10 mdl (ms)", "pairings")
	for _, row := range rows {
		fmt.Printf("%6d %17s %15s %16s %16s %6d/%d\n",
			row.Users, ms(row.OursMeasured), ms(row.OursModel),
			ms(row.Wang09Model), ms(row.Wang10Model),
			row.OursPairings, row.TheirsPairings)
	}
	fmt.Println("expected shape: ours ~flat (2 pairings); comparators linear in users")
	return nil
}

func (r *runner) detection() error {
	r.header("Detection — live Monte-Carlo vs eq. 10 (R = 2 guessing)")
	rows, err := experiments.Detection(r.pp, experiments.DetectionConfig{
		Blocks:      24,
		Trials:      r.trials,
		SampleSizes: []int{1, 2, 4, 8, 16},
		Seed:        1,
	})
	if err != nil {
		return err
	}
	if r.csv {
		fmt.Println("detection,csc,t,analytic_survival,empirical_survival,trials")
		for _, row := range rows {
			fmt.Printf("detection,%.2f,%d,%.4f,%.4f,%d\n",
				row.CSC, row.T, row.Analytic, row.Empiric, row.Trials)
		}
		return nil
	}
	fmt.Printf("%6s %4s %22s %22s\n", "CSC", "t", "analytic survival", "empirical survival")
	for _, row := range rows {
		fmt.Printf("%6.2f %4d %22.4f %22.4f\n", row.CSC, row.T, row.Analytic, row.Empiric)
	}
	return nil
}

func (r *runner) optimalT() error {
	r.header("Optimal t — Theorem 3 closed form vs brute force")
	rows, err := experiments.OptimalT()
	if err != nil {
		return err
	}
	if r.csv {
		fmt.Println("optimalt,q,cheat_loss,t_closed,t_brute,cost")
		for _, row := range rows {
			fmt.Printf("optimalt,%.2f,%.0e,%d,%d,%.0f\n",
				row.Q, row.CheatLoss, row.TClosed, row.TBrute, row.CostAtT)
		}
		return nil
	}
	fmt.Printf("%6s %12s %10s %9s %14s\n", "q", "cheat loss", "t closed", "t brute", "cost at t*")
	for _, row := range rows {
		fmt.Printf("%6.2f %12.0e %10d %9d %14.0f\n",
			row.Q, row.CheatLoss, row.TClosed, row.TBrute, row.CostAtT)
	}
	return nil
}

func (r *runner) traffic() error {
	r.header("Traffic — audit transmission cost vs sample size (eq. 17 C_trans)")
	rows, err := experiments.Traffic(r.pp, 64, []int{1, 2, 4, 8, 16, 32, 64})
	if err != nil {
		return err
	}
	if r.csv {
		fmt.Println("traffic,sample_size,total_bytes,bytes_per_item")
		for _, row := range rows {
			fmt.Printf("traffic,%d,%d,%.0f\n", row.SampleSize, row.TotalBytes, row.BytesPerItem)
		}
		return nil
	}
	fmt.Printf("%8s %14s %18s\n", "t", "total bytes", "marginal bytes/item")
	for _, row := range rows {
		fmt.Printf("%8d %14d %18.0f\n", row.SampleSize, row.TotalBytes, row.BytesPerItem)
	}
	fmt.Println("expected shape: linear in t with a constant per-item slope — the paper's")
	fmt.Println("constant C_trans per sampled message-signature pair")
	return nil
}

func (r *runner) epochs() error {
	r.header("Epochs — mobile b-of-n adversary: exposure vs audit budget")
	fmt.Printf("%8s %12s %16s %12s\n", "t", "detections", "first detection", "exposure")
	for _, t := range []int{0, 1, 2, 4} {
		res, err := epoch.Run(epoch.Config{
			Servers: 4, Corrupted: 1, Epochs: 4, BlocksPerUser: 12,
			JobsPerEpoch: 1, SampleSize: t, CheaterCSC: 0.5, Seed: 1,
		})
		if err != nil {
			return err
		}
		detections := 0
		for _, ep := range res.Epochs {
			detections += ep.Detections
		}
		first := "-"
		if res.FirstDetectionEpoch > 0 {
			first = fmt.Sprintf("epoch %d", res.FirstDetectionEpoch)
		}
		if r.csv {
			fmt.Printf("epochs,%d,%d,%d,%d\n", t, detections, res.FirstDetectionEpoch, res.TotalExposure)
			continue
		}
		fmt.Printf("%8d %12d %16s %12d\n", t, detections, first, res.TotalExposure)
	}
	return nil
}
