package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"seccloud/internal/experiments"
	"seccloud/internal/obs"
)

// parallelAuditScenario is the acceptance scenario for the pipelined
// auditor: a 1000-block job, t = 300 sampled indices split over 30
// challenge rounds, on a 100 ms RTT link with real (slept) latency.
var parallelAuditScenario = experiments.ParallelAuditConfig{
	Blocks:     1000,
	SampleSize: 300,
	Rounds:     30,
	RTT:        100 * time.Millisecond,
	Repeats:    2,
	Seed:       1,
}

// parallelAuditJSON is the BENCH_parallel_audit.json shape.
type parallelAuditJSON struct {
	Experiment string `json:"experiment"`
	Params     string `json:"params"`
	Scenario   struct {
		Blocks     int     `json:"blocks"`
		SampleSize int     `json:"sample_size"`
		Rounds     int     `json:"rounds"`
		RTTMillis  float64 `json:"rtt_ms"`
		Repeats    int     `json:"repeats"`
	} `json:"scenario"`
	Audit []struct {
		Workers   int     `json:"workers"`
		ElapsedMS float64 `json:"elapsed_ms"`
		Speedup   float64 `json:"speedup"`
	} `json:"audit"`
	PairingPrecompute struct {
		ColdMS  float64 `json:"cold_ms"`
		WarmMS  float64 `json:"warm_ms"`
		Speedup float64 `json:"speedup"`
	} `json:"pairing_precompute"`
	// Metrics is the registry snapshot after the run: audit counters,
	// duration histograms, and transport traffic for every measured audit.
	Metrics obs.Snapshot `json:"metrics"`
}

func (r *runner) parallelAudit() error {
	r.header("Parallel audit — pipeline wall-clock vs worker-pool size")
	cfg := parallelAuditScenario
	for w := 1; w <= r.workers; w *= 2 {
		cfg.Workers = append(cfg.Workers, w)
	}
	hub := r.expHub()
	cfg.Hub = hub
	rows, err := experiments.ParallelAudit(r.pp, cfg)
	if err != nil {
		return err
	}
	precomp, err := experiments.PairingPrecomp(r.pp, r.iters)
	if err != nil {
		return err
	}

	if r.csv {
		fmt.Println("parallelaudit,workers,elapsed_ms,speedup")
		for _, row := range rows {
			fmt.Printf("parallelaudit,%d,%s,%.2f\n", row.Workers, ms(row.Elapsed), row.Speedup)
		}
		fmt.Println("pairingprecomp,cold_ms,warm_ms,speedup")
		fmt.Printf("pairingprecomp,%s,%s,%.2f\n", ms(precomp.Cold), ms(precomp.Warm), precomp.Speedup)
	} else {
		fmt.Printf("scenario: %d blocks, t=%d over %d rounds, RTT %v (really slept)\n\n",
			cfg.Blocks, cfg.SampleSize, cfg.Rounds, cfg.RTT)
		fmt.Printf("%8s %14s %9s\n", "workers", "elapsed (ms)", "speedup")
		for _, row := range rows {
			fmt.Printf("%8d %14s %8.2fx\n", row.Workers, ms(row.Elapsed), row.Speedup)
		}
		fmt.Printf("\npairing precompute (%s): cold %s ms → warm %s ms per ê (%.2fx)\n",
			precomp.Params, ms(precomp.Cold), ms(precomp.Warm), precomp.Speedup)
		fmt.Println("reading: with a fixed challenge seed every worker count produces the identical")
		fmt.Println("report; workers only overlap challenge round trips with verification CPU.")
	}

	if r.jsonOut == "" {
		return nil
	}
	var out parallelAuditJSON
	out.Experiment = "parallel-audit"
	out.Params = r.pp.Name()
	out.Scenario.Blocks = cfg.Blocks
	out.Scenario.SampleSize = cfg.SampleSize
	out.Scenario.Rounds = cfg.Rounds
	out.Scenario.RTTMillis = float64(cfg.RTT.Nanoseconds()) / 1e6
	out.Scenario.Repeats = cfg.Repeats
	for _, row := range rows {
		out.Audit = append(out.Audit, struct {
			Workers   int     `json:"workers"`
			ElapsedMS float64 `json:"elapsed_ms"`
			Speedup   float64 `json:"speedup"`
		}{row.Workers, float64(row.Elapsed.Nanoseconds()) / 1e6, row.Speedup})
	}
	out.PairingPrecompute.ColdMS = float64(precomp.Cold.Nanoseconds()) / 1e6
	out.PairingPrecompute.WarmMS = float64(precomp.Warm.Nanoseconds()) / 1e6
	out.PairingPrecompute.Speedup = precomp.Speedup
	out.Metrics = hub.Registry().Snapshot()
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(r.jsonOut, append(data, '\n'), 0o644)
}
