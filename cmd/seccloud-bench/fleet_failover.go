package main

import (
	"encoding/json"
	"fmt"
	"os"

	"seccloud/internal/experiments"
	"seccloud/internal/obs"
)

// fleetFailoverScenario: audit availability vs outage size on a 5-replica
// fleet, plus repair latency vs corruption size.
var fleetFailoverScenario = experiments.FleetFailoverConfig{
	Servers:       5,
	Blocks:        40,
	SampleSize:    12,
	KilledCounts:  []int{0, 1, 2, 3},
	CorruptCounts: []int{1, 2, 4, 8},
	Seed:          1,
}

// fleetFailoverJSON is the BENCH_fleet_failover.json shape.
type fleetFailoverJSON struct {
	Experiment   string `json:"experiment"`
	Params       string `json:"params"`
	Availability []struct {
		Killed             int     `json:"killed"`
		Audits             int     `json:"audits"`
		FullSample         int     `json:"full_sample"`
		Availability       float64 `json:"availability"`
		NoFailoverBaseline float64 `json:"no_failover_baseline"`
		Failovers          int     `json:"failovers"`
		Accusations        int     `json:"accusations"`
	} `json:"availability"`
	Repair []struct {
		CorruptBlocks int     `json:"corrupt_blocks"`
		Localized     bool    `json:"localized"`
		Confirmed     bool    `json:"confirmed"`
		RepairMS      float64 `json:"repair_ms"`
		PipelineMS    float64 `json:"pipeline_ms"`
		ReauditValid  bool    `json:"reaudit_valid"`
	} `json:"repair"`
	// Metrics is the registry snapshot after the run: failover, quorum,
	// and repair counters plus breaker gauges for the last sweep row.
	Metrics obs.Snapshot `json:"metrics"`
}

func (r *runner) fleetFailover() error {
	r.header("Fleet failover — audit availability under outages and repair latency")
	cfg := fleetFailoverScenario
	hub := r.expHub()
	cfg.Hub = hub
	avail, repairs, err := experiments.FleetFailover(r.pp, cfg)
	if err != nil {
		return err
	}

	if r.csv {
		fmt.Println("fleetavail,killed,audits,full_sample,availability,no_failover_baseline,failovers,accusations")
		for _, row := range avail {
			fmt.Printf("fleetavail,%d,%d,%d,%.3f,%.3f,%d,%d\n", row.Killed, row.Audits,
				row.FullSample, row.Availability, row.NoFailoverBaseline, row.Failovers, row.Accusations)
		}
		fmt.Println("fleetrepair,corrupt_blocks,localized,confirmed,repair_ms,pipeline_ms,reaudit_valid")
		for _, row := range repairs {
			fmt.Printf("fleetrepair,%d,%v,%v,%s,%s,%v\n", row.CorruptBlocks, row.Localized,
				row.Confirmed, ms(row.Repair), ms(row.Pipeline), row.ReauditValid)
		}
	} else {
		fmt.Printf("%8s %8s %13s %14s %22s %11s %13s\n",
			"killed", "audits", "full sample", "availability", "no-failover baseline", "failovers", "accusations")
		for _, row := range avail {
			fmt.Printf("%8d %8d %13d %13.1f%% %21.1f%% %11d %13d\n",
				row.Killed, row.Audits, row.FullSample, 100*row.Availability,
				100*row.NoFailoverBaseline, row.Failovers, row.Accusations)
		}
		fmt.Printf("\n%15s %11s %11s %13s %15s %15s\n",
			"corrupt blocks", "localized", "confirmed", "repair (ms)", "pipeline (ms)", "re-audit valid")
		for _, row := range repairs {
			fmt.Printf("%15d %11v %11v %13s %15s %15v\n", row.CorruptBlocks, row.Localized,
				row.Confirmed, ms(row.Repair), ms(row.Pipeline), row.ReauditValid)
		}
		fmt.Println("\nreading: failover keeps audit availability at 100% while the no-failover")
		fmt.Println("baseline drops with every killed replica; outages never become accusations,")
		fmt.Println("and localized rot is healed in time roughly linear in the corrupt block count.")
	}

	if r.jsonOut == "" {
		return nil
	}
	var out fleetFailoverJSON
	out.Experiment = "fleet-failover"
	out.Params = r.pp.Name()
	for _, row := range avail {
		out.Availability = append(out.Availability, struct {
			Killed             int     `json:"killed"`
			Audits             int     `json:"audits"`
			FullSample         int     `json:"full_sample"`
			Availability       float64 `json:"availability"`
			NoFailoverBaseline float64 `json:"no_failover_baseline"`
			Failovers          int     `json:"failovers"`
			Accusations        int     `json:"accusations"`
		}{row.Killed, row.Audits, row.FullSample, row.Availability,
			row.NoFailoverBaseline, row.Failovers, row.Accusations})
	}
	for _, row := range repairs {
		out.Repair = append(out.Repair, struct {
			CorruptBlocks int     `json:"corrupt_blocks"`
			Localized     bool    `json:"localized"`
			Confirmed     bool    `json:"confirmed"`
			RepairMS      float64 `json:"repair_ms"`
			PipelineMS    float64 `json:"pipeline_ms"`
			ReauditValid  bool    `json:"reaudit_valid"`
		}{row.CorruptBlocks, row.Localized, row.Confirmed,
			float64(row.Repair.Nanoseconds()) / 1e6,
			float64(row.Pipeline.Nanoseconds()) / 1e6, row.ReauditValid})
	}
	out.Metrics = hub.Registry().Snapshot()
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(r.jsonOut, append(data, '\n'), 0o644)
}
