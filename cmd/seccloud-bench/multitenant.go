package main

import (
	"encoding/json"
	"fmt"
	"os"

	"seccloud/internal/experiments"
	"seccloud/internal/obs"
)

// multitenantScenario: registered populations from 10⁵ to 10⁶ identities,
// Zipf-skewed session traffic, and the scheduler's cross-user aggregate
// verification against the per-user audit loop that re-validates each
// delegation on every call.
var multitenantScenario = experiments.MultiTenantConfig{
	UserCounts: []int{100_000, 300_000, 1_000_000},
	Sessions:   240,
	ZipfS:      1.3,
	Blocks:     6,
	SampleSize: 4,
	Workers:    8,
	FlushLimit: 48,
	Seed:       1,
}

// multitenantJSON is the BENCH_multitenant.json shape.
type multitenantJSON struct {
	Experiment string `json:"experiment"`
	Params     string `json:"params"`
	Cells      []struct {
		Users            int     `json:"users"`
		Mode             string  `json:"mode"`
		Sessions         int     `json:"sessions"`
		Distinct         int     `json:"distinct_tenants"`
		Materialized     int     `json:"materialized_tenants"`
		RegisterMS       float64 `json:"register_ms"`
		OnboardMS        float64 `json:"onboard_ms"`
		ElapsedMS        float64 `json:"elapsed_ms"`
		ThroughputPerSec float64 `json:"throughput_per_sec"`
		P50MS            float64 `json:"p50_ms"`
		P99MS            float64 `json:"p99_ms"`
		Flushes          int     `json:"flushes"`
		SigItems         int     `json:"sig_items"`
		Fallbacks        int     `json:"fallbacks"`
		Accusations      int     `json:"accusations"`
	} `json:"cells"`
	// Summary holds the acceptance figures: cross-batched over per-user
	// throughput at the largest population (≥ 3 required), worker-count
	// determinism, zero honest accusations, and the blame sanity cell.
	Summary struct {
		ThroughputRatio   float64 `json:"throughput_ratio_at_max_users"`
		MaxUsers          int     `json:"max_users"`
		Deterministic     bool    `json:"deterministic_across_workers"`
		Accusations       int     `json:"honest_accusations"`
		BlameTenants      int     `json:"blame_tenants"`
		BlameFallbacks    int     `json:"blame_fallbacks"`
		BlameAccusations  int     `json:"blame_accusations"`
		BlameFalseFlags   int     `json:"blame_false_flags"`
		SchedulerFlushLim int     `json:"scheduler_flush_limit"`
	} `json:"summary"`
	// Metrics is the registry snapshot after the run: scheduler session,
	// flush, item and fallback counters plus transport totals.
	Metrics obs.Snapshot `json:"metrics"`
}

func (r *runner) multitenant() error {
	r.header("Multi-tenant — cross-user aggregate verification at 10⁵–10⁶ users")
	cfg := multitenantScenario
	hub := r.expHub()
	cfg.Hub = hub
	rows, summary, err := experiments.MultiTenant(r.pp, cfg)
	if err != nil {
		return err
	}

	if r.csv {
		fmt.Println("multitenant,users,mode,sessions,distinct,materialized,register_ms,onboard_ms,elapsed_ms,throughput_per_sec,p50_ms,p99_ms,flushes,sig_items,fallbacks,accusations")
		for _, row := range rows {
			fmt.Printf("multitenant,%d,%s,%d,%d,%d,%s,%s,%s,%.1f,%s,%s,%d,%d,%d,%d\n",
				row.Users, row.Mode, row.Sessions, row.Distinct, row.Materialized,
				ms(row.RegisterTime), ms(row.OnboardTime), ms(row.Elapsed),
				row.ThroughputPerSec, ms(row.P50), ms(row.P99),
				row.Flushes, row.SigItems, row.Fallbacks, row.Accusations)
		}
	} else {
		fmt.Printf("%9s %9s %9s %9s %6s %12s %12s %11s %10s %10s %8s %8s\n",
			"users", "mode", "sessions", "distinct", "mat.", "register(ms)", "elapsed(ms)", "audits/s", "p50 (ms)", "p99 (ms)", "flushes", "accused")
		for _, row := range rows {
			fmt.Printf("%9d %9s %9d %9d %6d %12s %12s %11.1f %10s %10s %8d %8d\n",
				row.Users, row.Mode, row.Sessions, row.Distinct, row.Materialized,
				ms(row.RegisterTime), ms(row.Elapsed), row.ThroughputPerSec,
				ms(row.P50), ms(row.P99), row.Flushes, row.Accusations)
		}
		fmt.Printf("\ncross-batched vs per-user throughput at %d users: %.2fx\n",
			summary.MaxUsers, summary.ThroughputRatio)
		fmt.Printf("deterministic across worker counts: %v   honest accusations: %d\n",
			summary.Deterministic, summary.Accusations)
		fmt.Printf("blame cell: %d tenants, %d fallbacks, %d accusations (tampered tenant only), %d false flags\n",
			summary.Blame.Tenants, summary.Blame.Fallbacks, summary.Blame.Accusations, summary.Blame.FalseFlags)
		fmt.Println("\nreading: the per-user loop re-validates each delegation (warrant, root")
		fmt.Println("signature, commitment rebuild) on every session; the scheduler validates once")
		fmt.Println("at onboarding and folds every session's block signatures into shared §VI")
		fmt.Println("aggregates, so DA throughput scales with traffic, not with re-validation.")
	}

	if r.jsonOut == "" {
		return nil
	}
	var out multitenantJSON
	out.Experiment = "multitenant"
	out.Params = r.pp.Name()
	for _, row := range rows {
		out.Cells = append(out.Cells, struct {
			Users            int     `json:"users"`
			Mode             string  `json:"mode"`
			Sessions         int     `json:"sessions"`
			Distinct         int     `json:"distinct_tenants"`
			Materialized     int     `json:"materialized_tenants"`
			RegisterMS       float64 `json:"register_ms"`
			OnboardMS        float64 `json:"onboard_ms"`
			ElapsedMS        float64 `json:"elapsed_ms"`
			ThroughputPerSec float64 `json:"throughput_per_sec"`
			P50MS            float64 `json:"p50_ms"`
			P99MS            float64 `json:"p99_ms"`
			Flushes          int     `json:"flushes"`
			SigItems         int     `json:"sig_items"`
			Fallbacks        int     `json:"fallbacks"`
			Accusations      int     `json:"accusations"`
		}{row.Users, row.Mode, row.Sessions, row.Distinct, row.Materialized,
			float64(row.RegisterTime.Nanoseconds()) / 1e6,
			float64(row.OnboardTime.Nanoseconds()) / 1e6,
			float64(row.Elapsed.Nanoseconds()) / 1e6,
			row.ThroughputPerSec,
			float64(row.P50.Nanoseconds()) / 1e6, float64(row.P99.Nanoseconds()) / 1e6,
			row.Flushes, row.SigItems, row.Fallbacks, row.Accusations})
	}
	out.Summary.ThroughputRatio = summary.ThroughputRatio
	out.Summary.MaxUsers = summary.MaxUsers
	out.Summary.Deterministic = summary.Deterministic
	out.Summary.Accusations = summary.Accusations
	out.Summary.BlameTenants = summary.Blame.Tenants
	out.Summary.BlameFallbacks = summary.Blame.Fallbacks
	out.Summary.BlameAccusations = summary.Blame.Accusations
	out.Summary.BlameFalseFlags = summary.Blame.FalseFlags
	out.Summary.SchedulerFlushLim = cfg.FlushLimit
	out.Metrics = hub.Registry().Snapshot()
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(r.jsonOut, append(data, '\n'), 0o644)
}
