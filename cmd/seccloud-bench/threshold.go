package main

import (
	"encoding/json"
	"fmt"
	"os"

	"seccloud/internal/experiments"
	"seccloud/internal/obs"
)

// thresholdScenario: quorum shapes from fault-free through the full n−t
// budget (crashes, Byzantine partials, and both at once), each cell
// audited side by side with a single-DA reference, with a mid-run tamper
// so detections are shown flowing through degraded quorums.
var thresholdScenario = experiments.ThresholdExpConfig{
	Cells: []experiments.ThresholdCell{
		{T: 3, N: 5, Crashed: 0, Byzantine: 0},
		{T: 3, N: 5, Crashed: 2, Byzantine: 0},
		{T: 3, N: 5, Crashed: 1, Byzantine: 1},
		{T: 2, N: 5, Crashed: 2, Byzantine: 1},
		{T: 4, N: 7, Crashed: 2, Byzantine: 1},
	},
	Epochs:      4,
	Blocks:      12,
	SampleSize:  6,
	TamperEpoch: 3,
	Workers:     4,
	Seed:        1,
}

// thresholdJSON is the BENCH_threshold.json shape.
type thresholdJSON struct {
	Experiment string `json:"experiment"`
	Params     string `json:"params"`
	Cells      []struct {
		T                 int     `json:"t"`
		N                 int     `json:"n"`
		Crashed           int     `json:"crashed_holders"`
		Byzantine         int     `json:"byzantine_holders"`
		Audits            int     `json:"audits"`
		QuorumRecoveries  int     `json:"quorum_recoveries"`
		ByzantinePartials int     `json:"byzantine_partials"`
		Detections        int     `json:"detections"`
		FalseFlags        int     `json:"false_flags"`
		VerdictMismatches int     `json:"verdict_mismatches"`
		DistinctQuorums   int     `json:"distinct_quorums"`
		FirstDetection    int     `json:"first_detection_epoch"`
		ElapsedMS         float64 `json:"elapsed_ms"`
	} `json:"cells"`
	// Summary holds the acceptance figures: zero false flags and zero
	// verdict mismatches across every fault schedule.
	Summary struct {
		FalseFlags          int  `json:"false_flags"`
		VerdictMismatches   int  `json:"verdict_mismatches"`
		QuorumRecoveries    int  `json:"quorum_recoveries"`
		MaxCrashedTolerated int  `json:"max_crashed_tolerated"`
		OverBudgetRejected  bool `json:"over_budget_rejected"`
	} `json:"summary"`
	// Metrics is the registry snapshot after the sweep: audit totals plus
	// the threshold recovery and Byzantine-partial counters.
	Metrics obs.Snapshot `json:"metrics"`
}

func (r *runner) threshold() error {
	r.header("Threshold — t-of-n audit quorums under crashes and Byzantine partials")
	cfg := thresholdScenario
	hub := r.expHub()
	cfg.Hub = hub
	rows, summary, err := experiments.Threshold(cfg)
	if err != nil {
		return err
	}

	if r.csv {
		fmt.Println("threshold,t,n,crashed,byzantine,audits,recoveries,byz_partials,detections,false_flags,mismatches,distinct_quorums,first_detection,elapsed_ms")
		for _, row := range rows {
			fmt.Printf("threshold,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s\n",
				row.T, row.N, row.Crashed, row.Byzantine, row.Audits,
				row.QuorumRecoveries, row.ByzantinePartials, row.Detections,
				row.FalseFlags, row.VerdictMismatches, row.DistinctQuorums,
				row.FirstDetection, ms(row.Elapsed))
		}
	} else {
		fmt.Printf("%7s %8s %10s %7s %11s %13s %11s %12s %10s %9s\n",
			"quorum", "crashed", "byzantine", "audits", "recoveries", "byz partials", "detections", "false flags", "mismatch", "quorums")
		for _, row := range rows {
			fmt.Printf("%2d-of-%d %8d %10d %7d %11d %13d %11d %12d %10d %9d\n",
				row.T, row.N, row.Crashed, row.Byzantine, row.Audits,
				row.QuorumRecoveries, row.ByzantinePartials, row.Detections,
				row.FalseFlags, row.VerdictMismatches, row.DistinctQuorums)
		}
		fmt.Printf("\nfalse flags: %d   verdict mismatches vs single-DA: %d   quorum recoveries: %d\n",
			summary.FalseFlags, summary.VerdictMismatches, summary.QuorumRecoveries)
		fmt.Printf("max crashed holders tolerated: %d   over-budget schedule rejected: %v\n",
			summary.MaxCrashedTolerated, summary.OverBudgetRejected)
		fmt.Println("\nreading: every verdict is Lagrange-combined from t commitment-verified")
		fmt.Println("partial pairings; crashed holders are replaced by later shares, forged")
		fmt.Println("partials are caught by their Feldman commitments and attributed to the")
		fmt.Println("share-holder — neither ever surfaces as a storage accusation.")
	}

	if r.jsonOut == "" {
		return nil
	}
	var out thresholdJSON
	out.Experiment = "threshold"
	out.Params = r.pp.Name()
	for _, row := range rows {
		out.Cells = append(out.Cells, struct {
			T                 int     `json:"t"`
			N                 int     `json:"n"`
			Crashed           int     `json:"crashed_holders"`
			Byzantine         int     `json:"byzantine_holders"`
			Audits            int     `json:"audits"`
			QuorumRecoveries  int     `json:"quorum_recoveries"`
			ByzantinePartials int     `json:"byzantine_partials"`
			Detections        int     `json:"detections"`
			FalseFlags        int     `json:"false_flags"`
			VerdictMismatches int     `json:"verdict_mismatches"`
			DistinctQuorums   int     `json:"distinct_quorums"`
			FirstDetection    int     `json:"first_detection_epoch"`
			ElapsedMS         float64 `json:"elapsed_ms"`
		}{
			T: row.T, N: row.N, Crashed: row.Crashed, Byzantine: row.Byzantine,
			Audits: row.Audits, QuorumRecoveries: row.QuorumRecoveries,
			ByzantinePartials: row.ByzantinePartials, Detections: row.Detections,
			FalseFlags: row.FalseFlags, VerdictMismatches: row.VerdictMismatches,
			DistinctQuorums: row.DistinctQuorums, FirstDetection: row.FirstDetection,
			ElapsedMS: float64(row.Elapsed.Nanoseconds()) / 1e6,
		})
	}
	out.Summary.FalseFlags = summary.FalseFlags
	out.Summary.VerdictMismatches = summary.VerdictMismatches
	out.Summary.QuorumRecoveries = summary.QuorumRecoveries
	out.Summary.MaxCrashedTolerated = summary.MaxCrashedTolerated
	out.Summary.OverBudgetRejected = summary.OverBudgetRejected
	out.Metrics = hub.Registry().Snapshot()

	raw, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(r.jsonOut, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", r.jsonOut)
	return nil
}
