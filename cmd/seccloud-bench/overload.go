package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"seccloud/internal/experiments"
	"seccloud/internal/obs"
)

// overloadScenario: an open-loop request storm at 1×/2×/4× of fleet
// capacity, with and without bounded admission queues, while the DA audits
// into the pressure; plus a hedged-round contrast against a queue-delayed
// primary.
var overloadScenario = experiments.OverloadConfig{
	Servers:         2,
	Blocks:          24,
	MaxInflight:     2,
	QueueLimit:      4,
	ServiceTime:     4 * time.Millisecond,
	Patience:        100 * time.Millisecond,
	CellDuration:    800 * time.Millisecond,
	AuditDeadline:   400 * time.Millisecond,
	LoadMultipliers: []float64{1, 2, 4},
	SampleSize:      8,
	Rounds:          3,
	Seed:            1,
}

// overloadJSON is the BENCH_overload.json shape.
type overloadJSON struct {
	Experiment string `json:"experiment"`
	Params     string `json:"params"`
	Load       []struct {
		OfferedLoad             float64 `json:"offered_load"`
		Protected               bool    `json:"protected"`
		Offered                 int     `json:"offered"`
		Completed               int     `json:"completed"`
		Shed                    int     `json:"shed"`
		Abandoned               int     `json:"abandoned"`
		GoodputPerSec           float64 `json:"goodput_per_sec"`
		P50MS                   float64 `json:"p50_ms"`
		P99MS                   float64 `json:"p99_ms"`
		MaxQueueDepth           int     `json:"max_queue_depth"`
		Audits                  int     `json:"audits"`
		Accusations             int     `json:"accusations"`
		AuditShedRounds         int     `json:"audit_shed_rounds"`
		AuditTimeoutRounds      int     `json:"audit_timeout_rounds"`
		AuditsDegraded          int     `json:"audits_degraded"`
		BudgetDenied            int     `json:"budget_denied"`
		EffectiveSampleFraction float64 `json:"effective_sample_fraction"`
	} `json:"load"`
	Hedge []struct {
		Hedge        bool    `json:"hedge"`
		Audits       int     `json:"audits"`
		HedgedRounds int     `json:"hedged_rounds"`
		AuditP50MS   float64 `json:"audit_p50_ms"`
		AuditP99MS   float64 `json:"audit_p99_ms"`
		Accusations  int     `json:"accusations"`
	} `json:"hedge"`
	// Summary holds the acceptance figures: protected goodput retention
	// and p99 inflation at 4× load relative to 1×, and the unprotected
	// baseline's peak queue depth.
	Summary struct {
		GoodputRetention4x    float64 `json:"goodput_retention_4x"`
		P99Ratio4x            float64 `json:"p99_ratio_4x"`
		Accusations           int     `json:"accusations"`
		UnprotectedMaxQueue   int     `json:"unprotected_max_queue_depth"`
		ProtectedQueueLimit   int     `json:"protected_queue_limit"`
		HedgeP99SpeedupFactor float64 `json:"hedge_p99_speedup_factor"`
	} `json:"summary"`
	// Metrics is the registry snapshot after the run: admission sheds,
	// retry-budget denials, degradation counters, transport totals.
	Metrics obs.Snapshot `json:"metrics"`
}

func (r *runner) overload() error {
	r.header("Overload — goodput and audit integrity under an open-loop request storm")
	cfg := overloadScenario
	hub := r.expHub()
	cfg.Hub = hub
	rows, hedged, err := experiments.Overload(r.pp, cfg)
	if err != nil {
		return err
	}

	// The acceptance figures compare the protected cells at the sweep's
	// lowest and highest multipliers.
	var base, peak *experiments.OverloadRow
	accusations := 0
	unprotectedMaxQueue := 0
	for i := range rows {
		row := &rows[i]
		accusations += row.Accusations
		if row.Protected {
			if base == nil || row.OfferedLoad < base.OfferedLoad {
				base = row
			}
			if peak == nil || row.OfferedLoad > peak.OfferedLoad {
				peak = row
			}
		} else if row.MaxQueueDepth > unprotectedMaxQueue {
			unprotectedMaxQueue = row.MaxQueueDepth
		}
	}
	retention, p99Ratio := 0.0, 0.0
	if base != nil && peak != nil && base.GoodputPerSec > 0 {
		retention = peak.GoodputPerSec / base.GoodputPerSec
		if base.P99 > 0 {
			p99Ratio = float64(peak.P99) / float64(base.P99)
		}
	}
	hedgeSpeedup := 0.0
	if len(hedged) == 2 && hedged[1].AuditP99 > 0 {
		hedgeSpeedup = float64(hedged[0].AuditP99) / float64(hedged[1].AuditP99)
	}

	if r.csv {
		fmt.Println("overload,offered_load,protected,offered,completed,shed,abandoned,goodput_per_sec,p50_ms,p99_ms,max_queue_depth,audits,accusations,audit_shed_rounds,audit_timeout_rounds,audits_degraded,budget_denied,effective_sample_fraction")
		for _, row := range rows {
			fmt.Printf("overload,%g,%v,%d,%d,%d,%d,%.1f,%s,%s,%d,%d,%d,%d,%d,%d,%d,%.3f\n",
				row.OfferedLoad, row.Protected, row.Offered, row.Completed, row.Shed,
				row.Abandoned, row.GoodputPerSec, ms(row.P50), ms(row.P99),
				row.MaxQueueDepth, row.Audits, row.Accusations, row.AuditShedRounds,
				row.AuditTimeoutRounds, row.AuditsDegraded, row.BudgetDenied,
				row.EffectiveSampleFraction)
		}
		fmt.Println("overloadhedge,hedge,audits,hedged_rounds,audit_p50_ms,audit_p99_ms,accusations")
		for _, row := range hedged {
			fmt.Printf("overloadhedge,%v,%d,%d,%s,%s,%d\n", row.Hedge, row.Audits,
				row.HedgedRounds, ms(row.AuditP50), ms(row.AuditP99), row.Accusations)
		}
	} else {
		fmt.Printf("%6s %10s %8s %10s %6s %10s %10s %9s %9s %7s %7s %8s %9s %7s\n",
			"load", "protected", "offered", "completed", "shed", "abandoned",
			"goodput/s", "p50 (ms)", "p99 (ms)", "queue", "audits", "accused", "degraded", "sample")
		for _, row := range rows {
			fmt.Printf("%5gx %10v %8d %10d %6d %10d %10.1f %9s %9s %7d %7d %8d %9d %6.0f%%\n",
				row.OfferedLoad, row.Protected, row.Offered, row.Completed, row.Shed,
				row.Abandoned, row.GoodputPerSec, ms(row.P50), ms(row.P99),
				row.MaxQueueDepth, row.Audits, row.Accusations, row.AuditsDegraded,
				100*row.EffectiveSampleFraction)
		}
		fmt.Printf("\n%6s %8s %14s %14s %14s %8s\n",
			"hedge", "audits", "hedged rounds", "p50 (ms)", "p99 (ms)", "accused")
		for _, row := range hedged {
			fmt.Printf("%6v %8d %14d %14s %14s %8d\n", row.Hedge, row.Audits,
				row.HedgedRounds, ms(row.AuditP50), ms(row.AuditP99), row.Accusations)
		}
		fmt.Printf("\ngoodput retention at %gx (protected): %.1f%%   p99 inflation: %.1fx\n",
			overloadScenario.LoadMultipliers[len(overloadScenario.LoadMultipliers)-1],
			100*retention, p99Ratio)
		fmt.Printf("unprotected peak queue depth: %d (protected limit: %d)   hedge p99 speedup: %.1fx\n",
			unprotectedMaxQueue, cfg.QueueLimit, hedgeSpeedup)
		fmt.Println("\nreading: bounded LIFO queues shed excess load with a typed refusal and keep")
		fmt.Println("goodput and tail latency flat as offered load quadruples; the unbounded FIFO")
		fmt.Println("baseline queues without bound and serves replies nobody is waiting for.")
		fmt.Println("Overload is never evidence: every audit stays valid, shed rounds are recorded")
		fmt.Println("as liveness loss, and hedged rounds route around the queue-delayed primary.")
	}

	if r.jsonOut == "" {
		return nil
	}
	var out overloadJSON
	out.Experiment = "overload"
	out.Params = r.pp.Name()
	for _, row := range rows {
		out.Load = append(out.Load, struct {
			OfferedLoad             float64 `json:"offered_load"`
			Protected               bool    `json:"protected"`
			Offered                 int     `json:"offered"`
			Completed               int     `json:"completed"`
			Shed                    int     `json:"shed"`
			Abandoned               int     `json:"abandoned"`
			GoodputPerSec           float64 `json:"goodput_per_sec"`
			P50MS                   float64 `json:"p50_ms"`
			P99MS                   float64 `json:"p99_ms"`
			MaxQueueDepth           int     `json:"max_queue_depth"`
			Audits                  int     `json:"audits"`
			Accusations             int     `json:"accusations"`
			AuditShedRounds         int     `json:"audit_shed_rounds"`
			AuditTimeoutRounds      int     `json:"audit_timeout_rounds"`
			AuditsDegraded          int     `json:"audits_degraded"`
			BudgetDenied            int     `json:"budget_denied"`
			EffectiveSampleFraction float64 `json:"effective_sample_fraction"`
		}{row.OfferedLoad, row.Protected, row.Offered, row.Completed, row.Shed,
			row.Abandoned, row.GoodputPerSec,
			float64(row.P50.Nanoseconds()) / 1e6, float64(row.P99.Nanoseconds()) / 1e6,
			row.MaxQueueDepth, row.Audits, row.Accusations, row.AuditShedRounds,
			row.AuditTimeoutRounds, row.AuditsDegraded, row.BudgetDenied,
			row.EffectiveSampleFraction})
	}
	for _, row := range hedged {
		out.Hedge = append(out.Hedge, struct {
			Hedge        bool    `json:"hedge"`
			Audits       int     `json:"audits"`
			HedgedRounds int     `json:"hedged_rounds"`
			AuditP50MS   float64 `json:"audit_p50_ms"`
			AuditP99MS   float64 `json:"audit_p99_ms"`
			Accusations  int     `json:"accusations"`
		}{row.Hedge, row.Audits, row.HedgedRounds,
			float64(row.AuditP50.Nanoseconds()) / 1e6,
			float64(row.AuditP99.Nanoseconds()) / 1e6, row.Accusations})
	}
	out.Summary.GoodputRetention4x = retention
	out.Summary.P99Ratio4x = p99Ratio
	out.Summary.Accusations = accusations
	out.Summary.UnprotectedMaxQueue = unprotectedMaxQueue
	out.Summary.ProtectedQueueLimit = cfg.QueueLimit
	out.Summary.HedgeP99SpeedupFactor = hedgeSpeedup
	out.Metrics = hub.Registry().Snapshot()
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(r.jsonOut, append(data, '\n'), 0o644)
}
