package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"seccloud/internal/experiments"
	"seccloud/internal/obs"
)

// daemonScenario: real localhost TCP sockets under 50 ms of simulated
// WAN RTT — the regime where streamed challenge pipelining has to beat
// sequential rounds by >= 1.5x — plus drain-under-fire, cross-transport
// determinism, and mutual-TLS cells.
var daemonScenario = experiments.DaemonExpConfig{
	Seed:      1,
	Blocks:    64,
	BlockSize: 256,
	Sample:    16,
	Rounds:    8,
	RTT:       50 * time.Millisecond,
	Stream:    4,
	Audits:    3,
}

// daemonJSON is the BENCH_daemon.json shape.
type daemonJSON struct {
	Experiment string `json:"experiment"`
	Rows       []struct {
		Mode         string  `json:"mode"`
		Stream       int     `json:"stream"`
		Audits       int     `json:"audits"`
		Rounds       int     `json:"rounds"`
		ElapsedMS    float64 `json:"elapsed_ms"`
		AuditsPerSec float64 `json:"audits_per_sec"`
		FalseFlags   int     `json:"false_flags"`
		LostRounds   int     `json:"lost_rounds"`
	} `json:"rows"`
	Summary struct {
		RTTMillis          float64  `json:"rtt_millis"`
		SpeedupX           float64  `json:"speedup_x"`
		FalseFlags         int      `json:"false_flags"`
		DrainOK            bool     `json:"drain_ok"`
		DrainedAuditValid  bool     `json:"drained_audit_valid"`
		DrainLostRounds    int      `json:"drain_lost_rounds"`
		FingerprintSim     string   `json:"fingerprint_sim"`
		FingerprintTCP     string   `json:"fingerprint_tcp"`
		Deterministic      bool     `json:"deterministic"`
		MTLSValid          bool     `json:"mtls_valid"`
		MTLSUnknownRefused bool     `json:"mtls_unknown_refused"`
		Gate               []string `json:"gate,omitempty"`
	} `json:"summary"`
	Metrics obs.Snapshot `json:"metrics"`
}

func (r *runner) daemon() error {
	r.header("Daemon — TLS wire transport, pooling, streamed challenge pipelining")
	cfg := daemonScenario
	cfg.Params = r.pp
	hub := r.expHub()
	cfg.Hub = hub
	rows, sum, err := experiments.DaemonExp(cfg)
	if err != nil {
		return err
	}

	if r.csv {
		fmt.Println("daemon,mode,stream,audits,rounds,elapsed_ms,audits_per_sec,false_flags,lost_rounds")
		for _, row := range rows {
			fmt.Printf("daemon,%s,%d,%d,%d,%s,%.3f,%d,%d\n",
				row.Mode, row.Stream, row.Audits, row.Rounds,
				ms(row.Elapsed), row.AuditsPerSec, row.FalseFlags, row.LostRounds)
		}
	} else {
		fmt.Printf("real localhost TCP fleet under %v simulated RTT, %d-position samples over %d rounds\n\n",
			sum.RTT, daemonScenario.Sample, daemonScenario.Rounds)
		fmt.Printf("%-12s %8s %8s %14s %16s %12s %12s\n",
			"mode", "stream", "audits", "elapsed (ms)", "audits/sec", "false flags", "lost rounds")
		for _, row := range rows {
			fmt.Printf("%-12s %8d %8d %14s %16.3f %12d %12d\n",
				row.Mode, row.Stream, row.Audits, ms(row.Elapsed),
				row.AuditsPerSec, row.FalseFlags, row.LostRounds)
		}
		fmt.Printf("\nstreamed speedup: %.2fx sequential (gate: >= 1.50x at %v RTT)\n", sum.SpeedupX, sum.RTT)
		fmt.Printf("false flags: %d\n", sum.FalseFlags)
		fmt.Printf("graceful drain: clean=%v, in-flight audit valid=%v, lost rounds=%d\n",
			sum.DrainOK, sum.DrainedAuditValid, sum.DrainLostRounds)
		fmt.Printf("cross-transport determinism: %v\n  netsim: %s\n  daemon: %s\n",
			sum.Deterministic, sum.FingerprintSim, sum.FingerprintTCP)
		fmt.Printf("mTLS: audit valid=%v, unregistered principal refused=%v\n",
			sum.MTLSValid, sum.MTLSUnknownRefused)
		fmt.Println("\nreading: with pooled conns, round N+1's challenge is on the wire while")
		fmt.Println("round N verifies, so WAN latency amortizes across the stream; drain lets")
		fmt.Println("grandfathered audits finish while new dials get the typed overload frame;")
		fmt.Println("and the verdict bytes are transport-independent — the simulator remains a")
		fmt.Println("faithful test harness for the production daemon.")
	}

	if r.jsonOut != "" {
		var out daemonJSON
		out.Experiment = "daemon"
		for _, row := range rows {
			out.Rows = append(out.Rows, struct {
				Mode         string  `json:"mode"`
				Stream       int     `json:"stream"`
				Audits       int     `json:"audits"`
				Rounds       int     `json:"rounds"`
				ElapsedMS    float64 `json:"elapsed_ms"`
				AuditsPerSec float64 `json:"audits_per_sec"`
				FalseFlags   int     `json:"false_flags"`
				LostRounds   int     `json:"lost_rounds"`
			}{
				Mode: row.Mode, Stream: row.Stream, Audits: row.Audits, Rounds: row.Rounds,
				ElapsedMS:    float64(row.Elapsed.Nanoseconds()) / 1e6,
				AuditsPerSec: row.AuditsPerSec, FalseFlags: row.FalseFlags, LostRounds: row.LostRounds,
			})
		}
		out.Summary.RTTMillis = float64(sum.RTT.Nanoseconds()) / 1e6
		out.Summary.SpeedupX = sum.SpeedupX
		out.Summary.FalseFlags = sum.FalseFlags
		out.Summary.DrainOK = sum.DrainOK
		out.Summary.DrainedAuditValid = sum.DrainedAuditValid
		out.Summary.DrainLostRounds = sum.DrainLostRounds
		out.Summary.FingerprintSim = sum.FingerprintSim
		out.Summary.FingerprintTCP = sum.FingerprintTCP
		out.Summary.Deterministic = sum.Deterministic
		out.Summary.MTLSValid = sum.MTLSValid
		out.Summary.MTLSUnknownRefused = sum.MTLSUnknownRefused
		out.Summary.Gate = sum.Gate
		out.Metrics = hub.Registry().Snapshot()

		raw, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(r.jsonOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", r.jsonOut)
	}

	// The acceptance gate is enforced, not just reported.
	if len(sum.Gate) > 0 {
		return fmt.Errorf("daemon: acceptance gate failed:\n  %s", strings.Join(sum.Gate, "\n  "))
	}
	return nil
}
