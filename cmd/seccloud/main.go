// Command seccloud runs a complete SecCloud session end to end — system
// initialization, secure storage, secure computation, commitment
// verification — over either the in-process loopback transport or a real
// TCP socket, optionally with a cheating server.
//
// Usage:
//
//	seccloud                                   # honest run, loopback
//	seccloud -transport tcp                    # same flow over TCP
//	seccloud -cheat compute -csc 0.5           # a server that guesses half
//	seccloud -cheat storage -ssc 0.7           # a server that deleted 30%
//	seccloud -cheat position -ssc 0.8          # wrong-position reads
//	seccloud -blocks 64 -samples 20 -params ss512
//	seccloud -admin 127.0.0.1:6060 -admin-linger 30s   # scrape /metrics and /traces
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"seccloud"
	"seccloud/internal/funcs"
	"seccloud/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "seccloud:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		transport = flag.String("transport", "loopback", "transport: loopback|tcp")
		params    = flag.String("params", "test256", "pairing parameters: ss512|test256")
		cheat     = flag.String("cheat", "none", "server behaviour: none|compute|storage|position")
		csc       = flag.Float64("csc", 0.5, "honest-computation fraction for -cheat compute")
		ssc       = flag.Float64("ssc", 0.5, "honest fraction for -cheat storage/position")
		blocks    = flag.Int("blocks", 32, "dataset size in blocks")
		samples   = flag.Int("samples", 8, "audit sample size t")
		fn        = flag.String("func", "sum", "function per sub-task (sum|mean|max|min|digest|parity|...)")
		seed      = flag.Int64("seed", 1, "workload/adversary seed")
		admin     = flag.String("admin", "", "serve /metrics, /traces, /healthz and pprof on this address (empty = off)")
		linger    = flag.Duration("admin-linger", 0, "keep the admin endpoint up this long after the run (requires -admin)")
	)
	flag.Parse()

	var hub *seccloud.Hub
	if *admin != "" {
		hub = seccloud.NewHub()
		srv, err := hub.ListenAndServe(*admin)
		if err != nil {
			return err
		}
		fmt.Printf("admin endpoint listening on http://%s/metrics\n", srv.Addr())
		defer func() { _ = srv.Close() }()
		if *linger > 0 {
			defer func() {
				fmt.Printf("admin endpoint up for another %v (scrape http://%s/metrics)\n", *linger, srv.Addr())
				time.Sleep(*linger)
			}()
		}
	}

	ps := seccloud.ParamInsecureTest256
	if *params == "ss512" {
		ps = seccloud.ParamSS512
	}
	sys, err := seccloud.NewSystem(ps)
	if err != nil {
		return err
	}
	user, err := sys.NewUser("user:cli")
	if err != nil {
		return err
	}
	auditor, err := sys.NewAuditor("da:cli")
	if err != nil {
		return err
	}
	auditor.WithObs(hub)

	var policy seccloud.CheatPolicy
	switch *cheat {
	case "none":
		policy = seccloud.Honest{}
	case "compute":
		policy = &seccloud.ComputationCheater{CSC: *csc, Rng: rand.New(rand.NewSource(*seed))}
	case "storage":
		policy = &seccloud.StorageCheater{KeepFraction: *ssc, Rng: rand.New(rand.NewSource(*seed))}
	case "position":
		policy = &seccloud.PositionCheater{
			HonestFraction: *ssc, DatasetSize: uint64(*blocks),
			Rng: rand.New(rand.NewSource(*seed)),
		}
	default:
		return fmt.Errorf("unknown -cheat mode %q", *cheat)
	}
	server, err := sys.NewServer("cs:cli", seccloud.ServerConfig{
		VerifyOnStore: true,
		Policy:        policy,
	})
	if err != nil {
		return err
	}
	fmt.Printf("server policy: %s\n", server.PolicyName())

	var client seccloud.Client
	switch *transport {
	case "loopback":
		client = seccloud.ObservedLoopback(server, hub)
	case "tcp":
		tcpSrv, err := seccloud.ServeTCP("127.0.0.1:0", server)
		if err != nil {
			return err
		}
		defer func() { _ = tcpSrv.Close() }()
		client, err = seccloud.DialTCPObserved(tcpSrv.Addr(), hub)
		if err != nil {
			return err
		}
		defer func() { _ = client.Close() }()
		fmt.Printf("serving on tcp://%s\n", tcpSrv.Addr())
	default:
		return fmt.Errorf("unknown -transport %q", *transport)
	}

	// Store.
	gen := seccloud.NewGenerator(*seed)
	ds := gen.GenDataset(user.ID(), *blocks, 16)
	req, err := user.PrepareStore(ds, server.ID(), auditor.ID())
	if err != nil {
		return err
	}
	start := time.Now()
	if err := user.Store(client, req); err != nil {
		return fmt.Errorf("store rejected (a cheating server may refuse valid data): %w", err)
	}
	fmt.Printf("stored %d blocks in %v\n", *blocks, time.Since(start).Round(time.Millisecond))

	// Compute.
	job := workload.UniformJob(user.ID(), funcs.Spec{Name: *fn}, *blocks)
	start = time.Now()
	resp, err := user.SubmitJob(client, "cli-job", job)
	if err != nil {
		return err
	}
	fmt.Printf("computed %d sub-tasks (%s) in %v; root %x…\n",
		job.Len(), *fn, time.Since(start).Round(time.Millisecond), resp.Root[:8])

	// Audit.
	d, err := seccloud.Delegate(user, auditor.ID(), "cli-job", job, resp, time.Now().Add(time.Hour))
	if err != nil {
		return err
	}
	report, err := auditor.AuditJob(client, d, seccloud.AuditConfig{
		SampleSize:      *samples,
		Rng:             rand.New(rand.NewSource(*seed + 1)),
		BatchSignatures: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("audit: sampled %d of %d sub-tasks in %v\n",
		report.SampleSize, job.Len(), report.Elapsed.Round(time.Millisecond))
	if report.Valid() {
		fmt.Println("verdict: VALID — no cheating detected in the sample")
		if *cheat != "none" {
			fmt.Println("(the cheater escaped this sample; increase -samples and rerun)")
		}
	} else {
		fmt.Printf("verdict: INVALID — %d failures:\n", len(report.Failures))
		for _, f := range report.Failures {
			fmt.Printf("  sub-task %d: %s check failed: %s\n", f.Index, f.Check, f.Detail)
		}
	}
	st := client.Stats()
	fmt.Printf("traffic: %d round trips, %d bytes total\n", st.Calls, st.TotalBytes())
	return nil
}
