// Command seccloudd is the SecCloud cloud-server daemon: it seeds the
// demo dataset for the shared identity universe and serves storage and
// computation audits on a real TCP (optionally mutual-TLS) socket,
// speaking the versioned SECW wire protocol with legacy v1 back-compat.
//
// Usage:
//
//	seccloudd                                   # plaintext on 127.0.0.1:7700
//	seccloudd -listen 127.0.0.1:0               # ephemeral port (printed)
//	seccloudd -config seccloudd.json            # file config, flags override
//	seccloudd -init-pki ./pki                   # write a demo CA + certs, then exit
//	seccloudd -tls-cert pki/server.pem -tls-key pki/server-key.pem \
//	          -tls-ca pki/ca.pem -mtls          # mutual TLS
//	seccloudd -max-inflight 8 -max-queue 16     # admission backpressure
//	seccloudd -admin 127.0.0.1:7701             # /metrics, /traces, /healthz, pprof
//
// SIGINT/SIGTERM drain gracefully: in-flight audits finish on their
// grandfathered conns, new dials are refused with the typed overload
// frame, and "drain complete" is printed on a clean exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"seccloud/internal/core"
	"seccloud/internal/daemon"
	"seccloud/internal/netsim"
	"seccloud/internal/obs"
	"seccloud/internal/pairing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "seccloudd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath = flag.String("config", "", "JSON config file (flags override)")
		listen     = flag.String("listen", "", "public protocol socket (default 127.0.0.1:7700)")
		admin      = flag.String("admin", "", "observability hub address (empty = off)")
		params     = flag.String("params", "", "pairing parameters: test256|ss512 (default test256)")
		seed       = flag.Int64("seed", 0, "identity-universe seed shared with seccloud-agencyd (default 1)")
		blocks     = flag.Int("blocks", 0, "demo dataset size in blocks (default 64)")
		blockSize  = flag.Int("block-size", 0, "demo dataset block size in bytes (default 256)")
		tlsCert    = flag.String("tls-cert", "", "server certificate PEM")
		tlsKey     = flag.String("tls-key", "", "server key PEM")
		tlsCA      = flag.String("tls-ca", "", "CA bundle PEM")
		mtls       = flag.Bool("mtls", false, "require and verify client certificates")
		initPKI    = flag.String("init-pki", "", "write a demo PKI into this directory and exit")
		maxConns   = flag.Int("max-conns", 0, "cap concurrently served conns (0 = unlimited)")
		inflight   = flag.Int("max-inflight", 0, "admission gate inflight slots (0 = no gate)")
		queue      = flag.Int("max-queue", 0, "admission gate queue depth")
		retryAfter = flag.Duration("retry-after", 0, "backoff hint attached to sheds")
		readTO     = flag.Duration("read-timeout", 0, "socket read timeout")
		writeTO    = flag.Duration("write-timeout", 0, "socket write timeout")
		drainIdle  = flag.Duration("drain-idle", 0, "idle grace per conn while draining")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "max graceful drain time before hard close")
	)
	flag.Parse()

	if *initPKI != "" {
		if err := daemon.GeneratePKI(*initPKI, nil, ""); err != nil {
			return err
		}
		fmt.Printf("seccloudd: wrote demo PKI (CA, server, client certs) to %s\n", *initPKI)
		return nil
	}

	cfg, err := daemon.LoadFileConfig(*configPath)
	if err != nil {
		return err
	}
	// Flags override file config; built-in defaults fill the rest.
	pickStr := func(flagVal, fileVal, def string) string {
		if flagVal != "" {
			return flagVal
		}
		if fileVal != "" {
			return fileVal
		}
		return def
	}
	pickInt := func(flagVal, fileVal, def int) int {
		if flagVal != 0 {
			return flagVal
		}
		if fileVal != 0 {
			return fileVal
		}
		return def
	}
	listenAddr := pickStr(*listen, cfg.Listen, "127.0.0.1:7700")
	adminAddr := pickStr(*admin, cfg.Admin, "")
	paramName := pickStr(*params, cfg.Params, "test256")
	useSeed := cfg.Seed
	if *seed != 0 {
		useSeed = *seed
	}
	if useSeed == 0 {
		useSeed = 1
	}
	nBlocks := pickInt(*blocks, cfg.Blocks, 64)
	nBlockSize := pickInt(*blockSize, cfg.BlockSize, 256)
	certFile := pickStr(*tlsCert, cfg.TLSCert, "")
	keyFile := pickStr(*tlsKey, cfg.TLSKey, "")
	caFile := pickStr(*tlsCA, cfg.TLSCA, "")
	useMTLS := *mtls || cfg.MTLS
	nMaxConns := pickInt(*maxConns, cfg.MaxConns, 0)
	nInflight := pickInt(*inflight, cfg.MaxInflight, 0)
	nQueue := pickInt(*queue, cfg.MaxQueue, 0)

	pp, err := pairing.ByName(paramName)
	if err != nil {
		return err
	}
	universe, err := daemon.NewUniverse(pp, useSeed)
	if err != nil {
		return err
	}
	server, err := universe.NewServer("0", core.ServerConfig{})
	if err != nil {
		return err
	}
	if err := universe.SeedDataset(server, "0", nBlocks, nBlockSize); err != nil {
		return err
	}
	fmt.Printf("seccloudd: universe seed %d (%s), serving cs:0 with %d x %dB blocks for %s (verifier %s)\n",
		useSeed, pp.Name(), nBlocks, nBlockSize, universe.User.ID(), universe.Agency.ID())

	var hub *obs.Hub
	if adminAddr != "" {
		hub = obs.NewHub()
		adminSrv, err := hub.ListenAndServe(adminAddr)
		if err != nil {
			return err
		}
		defer adminSrv.Close()
		fmt.Printf("seccloudd: admin hub on http://%s/metrics\n", adminSrv.Addr())
	}

	srvCfg := daemon.ServerConfig{
		Handler:      server,
		ReadTimeout:  pickDur(*readTO, cfg.ReadTimeoutMillis, 0),
		WriteTimeout: pickDur(*writeTO, cfg.WriteTimeoutMillis, 0),
		DrainIdle:    pickDur(*drainIdle, cfg.DrainIdleMillis, 0),
		MaxConns:     nMaxConns,
		Obs:          hub,
	}
	if nInflight > 0 {
		srvCfg.Admission = netsim.NewAdmission(netsim.AdmissionConfig{
			MaxInflight: nInflight,
			MaxQueue:    nQueue,
			RetryAfter:  pickDur(*retryAfter, cfg.RetryAfterMillis, 0),
		}).WithObs(hub, "daemon")
	}
	if certFile != "" || keyFile != "" {
		tcfg, err := daemon.LoadServerTLS(certFile, keyFile, caFile, useMTLS)
		if err != nil {
			return err
		}
		srvCfg.TLS = tcfg
		if useMTLS {
			identities := cfg.Identities
			if len(identities) == 0 {
				identities = map[string]string{daemon.DefaultAgencySAN: universe.Agency.ID()}
			}
			srvCfg.Identities = daemon.NewIdentityMap(identities)
			fmt.Printf("seccloudd: mTLS on, %d registered principal(s)\n", len(identities))
		}
	}

	s, err := daemon.Listen(listenAddr, srvCfg)
	if err != nil {
		return err
	}
	fmt.Printf("seccloudd: listening on %s\n", s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("seccloudd: %s received, draining (max %v)\n", got, *drainTO)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Printf("seccloudd: drain complete (refused %d conn(s) while draining)\n", s.RefusedConns())
	return nil
}

// pickDur merges a duration flag over a millisecond file-config field.
func pickDur(flagVal time.Duration, fileMillis int64, def time.Duration) time.Duration {
	if flagVal != 0 {
		return flagVal
	}
	return daemon.Millis(fileMillis, def)
}
