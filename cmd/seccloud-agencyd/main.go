// Command seccloud-agencyd is the designated-agency daemon: it derives
// the same identity universe as seccloudd from the shared seed and drives
// scheduled storage audits over pooled TCP (optionally mutual-TLS)
// connections, streaming challenge rounds so WAN latency amortizes across
// the pipeline.
//
// Usage:
//
//	seccloud-agencyd -servers 127.0.0.1:7700                # audit forever
//	seccloud-agencyd -servers 127.0.0.1:7700 -audits 3      # three sweeps, then exit
//	seccloud-agencyd -servers a:7700,b:7700 -interval 30s   # a fleet on a schedule
//	seccloud-agencyd -stream 4 -rtt 50ms                    # pipelined rounds under simulated WAN RTT
//	seccloud-agencyd -tls-ca pki/ca.pem -tls-cert pki/client.pem \
//	                 -tls-key pki/client-key.pem            # mutual TLS
//
// Every audit prints its verdict including "false flags: N" — the
// invariant being N = 0 against honest servers no matter what the
// transport does. SIGINT/SIGTERM drain gracefully: the in-flight sweep
// finishes, no new sweep starts, and "drain complete" is printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"seccloud/internal/daemon"
	"seccloud/internal/netsim"
	"seccloud/internal/obs"
	"seccloud/internal/pairing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "seccloud-agencyd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		servers    = flag.String("servers", "127.0.0.1:7700", "comma-separated audit target addresses")
		audits     = flag.Int("audits", 0, "number of sweeps to run (0 = until signaled)")
		interval   = flag.Duration("interval", 10*time.Second, "pause between scheduled sweeps")
		params     = flag.String("params", "test256", "pairing parameters: test256|ss512")
		seed       = flag.Int64("seed", 1, "identity-universe seed shared with seccloudd")
		dataset    = flag.Int("dataset", 64, "audited dataset size in blocks (must match seccloudd -blocks)")
		sample     = flag.Int("sample", 16, "audit sample size t")
		rounds     = flag.Int("rounds", 8, "challenge rounds per audit")
		stream     = flag.Int("stream", 4, "streamed round concurrency (1 = sequential)")
		roundTO    = flag.Duration("round-timeout", 10*time.Second, "per-round-trip deadline")
		deadline   = flag.Duration("deadline", 2*time.Minute, "per-audit deadline")
		retries    = flag.Int("retries", 4, "max attempts per transport-failed round (1 = no retry)")
		rtt        = flag.Duration("rtt", 0, "simulated extra RTT per round trip (benchmark WANs on localhost)")
		timeout    = flag.Duration("timeout", 30*time.Second, "round-trip timeout without a deadline")
		tlsCert    = flag.String("tls-cert", "", "client certificate PEM")
		tlsKey     = flag.String("tls-key", "", "client key PEM")
		tlsCA      = flag.String("tls-ca", "", "CA bundle PEM (enables TLS)")
		serverName = flag.String("server-name", "localhost", "expected TLS server name")
		admin      = flag.String("admin", "", "observability hub address (empty = off)")
	)
	flag.Parse()

	targets := strings.Split(*servers, ",")
	for i := range targets {
		targets[i] = strings.TrimSpace(targets[i])
	}

	pp, err := pairing.ByName(*params)
	if err != nil {
		return err
	}
	universe, err := daemon.NewUniverse(pp, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("seccloud-agencyd: universe seed %d (%s), auditing %s for %s as %s\n",
		*seed, pp.Name(), strings.Join(targets, ", "), universe.User.ID(), universe.Agency.ID())

	var hub *obs.Hub
	if *admin != "" {
		hub = obs.NewHub()
		adminSrv, err := hub.ListenAndServe(*admin)
		if err != nil {
			return err
		}
		defer adminSrv.Close()
		fmt.Printf("seccloud-agencyd: admin hub on http://%s/metrics\n", adminSrv.Addr())
	}

	trCfg := daemon.TCPTransportConfig{
		Timeout:     *timeout,
		DialTimeout: 10 * time.Second,
		RTT:         *rtt,
		Obs:         hub,
	}
	if *tlsCA != "" {
		tcfg, err := daemon.LoadClientTLS(*tlsCert, *tlsKey, *tlsCA, *serverName)
		if err != nil {
			return err
		}
		trCfg.TLS = tcfg
	}
	transport := daemon.NewTCPTransport(trCfg)
	defer transport.Close()

	var retrier *netsim.Retrier
	if *retries > 1 {
		retrier = netsim.NewRetrier(*seed)
		retrier.MaxAttempts = *retries
	}
	auditor, err := daemon.NewAuditor(daemon.AuditorConfig{
		Universe:     universe,
		Transport:    transport,
		Servers:      targets,
		DatasetSize:  *dataset,
		SampleSize:   *sample,
		Rounds:       *rounds,
		Stream:       *stream,
		RoundTimeout: *roundTO,
		Deadline:     *deadline,
		Retry:        retrier,
		Interval:     *interval,
		Seed:         *seed,
		Obs:          hub,
	})
	if err != nil {
		return err
	}

	// A signal drains: the in-flight sweep finishes, Run returns nil.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	drained := make(chan struct{})
	var draining atomic.Bool
	go func() {
		got, ok := <-sig
		if !ok {
			return
		}
		draining.Store(true)
		fmt.Printf("seccloud-agencyd: %s received, draining\n", got)
		auditor.Drain()
		close(drained)
	}()

	bad := 0
	err = auditor.Run(context.Background(), *audits, func(out daemon.AuditOutcome) {
		if out.Err != nil {
			bad++
			fmt.Printf("audit sweep=%d server=%s error=%v elapsed=%s\n",
				out.Sweep, out.Server, out.Err, out.Elapsed.Round(time.Millisecond))
			return
		}
		if !out.Valid || out.FalseFlags != 0 {
			bad++
		}
		fmt.Printf("audit sweep=%d server=%s valid=%t false flags: %d shed=%d netfaults=%d elapsed=%s\n",
			out.Sweep, out.Server, out.Valid, out.FalseFlags, out.Shed, out.NetworkFaults,
			out.Elapsed.Round(time.Millisecond))
	})
	signal.Stop(sig)
	close(sig)
	if err != nil {
		return err
	}
	if draining.Load() {
		<-drained
		fmt.Println("seccloud-agencyd: drain complete")
	}
	if bad > 0 {
		return fmt.Errorf("%d audit(s) failed or flagged", bad)
	}
	fmt.Println("seccloud-agencyd: all audits clean")
	return nil
}
