package main

import (
	"fmt"

	"seccloud/internal/epoch"
)

// runMultiTenant executes the multi-tenant scheduler simulation and prints
// per-epoch drain stats plus the end-of-run verdict summary. The final
// "false flags: N" line is the invariant CI smokes on: cross-tenant
// aggregation must never accuse an honest tenant.
func runMultiTenant(cfg epoch.MultiTenantConfig) error {
	res, err := epoch.RunMultiTenant(cfg)
	if err != nil {
		return err
	}
	mode := "cross-tenant aggregates"
	if !cfg.CrossTenantBatch {
		mode = "per-tenant aggregates (baseline)"
	}
	fmt.Printf("multi-tenant audit: %d registered tenants, %d sessions/epoch × %d epochs, zipf s=%.2f, %s\n\n",
		res.RegisteredTenants, cfg.SessionsPerEpoch, cfg.Epochs, cfg.ZipfS, mode)
	fmt.Printf("%6s %9s %9s %8s %8s %7s %10s %11s %11s\n",
		"epoch", "sessions", "distinct", "new", "flushes", "sigs", "fallbacks", "detections", "false flags")
	for _, ep := range res.Epochs {
		fmt.Printf("%6d %9d %9d %8d %8d %7d %10d %11d %11d\n",
			ep.Epoch, ep.Sessions, ep.DistinctTenants, ep.NewTenants,
			ep.Flushes, ep.BatchedSigItems, ep.BlameFallbacks, ep.Detections, ep.FalseFlags)
	}
	fmt.Printf("\nmaterialized %d of %d registered tenants (traffic-bounded working set)\n",
		res.MaterializedTenants, res.RegisteredTenants)
	fmt.Printf("%d sessions drained in %v DA time: %d aggregate flushes over %d signatures, %d blame fallbacks\n",
		res.SessionsRun, res.Elapsed, res.Flushes, res.BatchedSigItems, res.BlameFallbacks)
	if cfg.TamperEpoch > 0 {
		first := "-"
		if res.FirstDetectionEpoch > 0 {
			first = fmt.Sprintf("epoch %d", res.FirstDetectionEpoch)
		}
		fmt.Printf("tamper schedule: rank-%d tenant rotted at epoch %d, first detection %s\n",
			cfg.TamperRank, cfg.TamperEpoch, first)
	}
	fmt.Printf("detections: %d   false flags: %d\n", res.Detections, res.FalseFlags)

	m := res.Metrics
	fmt.Printf("\nmetrics registry summary\n")
	fmt.Printf("%10s %9s %10s %11s %12s\n",
		"sessions", "flushes", "sig items", "fallbacks", "registered")
	fmt.Printf("%10d %9d %10d %11d %12d\n",
		m.Sessions, m.Flushes, m.SigItems, m.Fallbacks, m.Registered)
	return nil
}
