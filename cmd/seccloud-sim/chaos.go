package main

import (
	"fmt"

	"seccloud/internal/chaos"
)

// chaosRunFlags carries the -chaos* flag values into the chaos mode.
type chaosRunFlags struct {
	Seed   int64  // -chaos-seed: first (or only) schedule seed
	Steps  string // -chaos-steps: explicit schedule (repro mode)
	Runs   int    // -chaos-runs: seeds Seed..Seed+Runs-1
	Tamper bool   // -chaos-tamper: schedules include a real cheating replica
	Shrink bool   // -chaos-shrink: minimize a failing run to a one-line repro
}

// runChaos executes seeded chaos runs. Every run uses
// chaos.Defaults(seed) — the same configuration the bench sweep and the
// printed repro lines assume — so `-chaos-seed N -chaos-steps "…"`
// replays a reported failure byte-for-byte.
func runChaos(f chaosRunFlags) error {
	base := chaos.Defaults(f.Seed)
	fmt.Printf("chaos nemesis: %d servers, %d blocks, %d active + %d quiet epochs\n\n",
		base.Servers, base.Blocks, base.ActiveEpochs, base.QuietEpochs)
	fmt.Printf("%8s %6s %5s %7s %7s %9s %9s %9s %11s\n",
		"seed", "steps", "ops", "failed", "audits", "accused", "tampered", "detected", "violations")

	var reports []*chaos.Report
	falseFlags, violations := 0, 0
	tampered, detected := 0, 0
	for i := 0; i < f.Runs; i++ {
		cfg := chaos.Defaults(f.Seed + int64(i))
		cfg.Tamper = f.Tamper
		if f.Steps != "" {
			sched, err := chaos.ParseSchedule(f.Steps)
			if err != nil {
				return err
			}
			cfg.Schedule = sched
		}
		rep, err := chaos.Run(cfg)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		falseFlags += rep.FalseFlags
		violations += len(rep.Violations)
		if rep.Tampered {
			tampered++
			if rep.Detected {
				detected++
			}
		}
		fmt.Printf("%8d %6d %5d %7d %7d %9d %9v %9v %11d\n",
			rep.Seed, rep.Steps, rep.Ops, rep.OpsFailed, rep.Audits,
			rep.Accusations, rep.Tampered, rep.Detected, len(rep.Violations))
	}

	if f.Runs == 1 {
		fmt.Printf("\nschedule: %s\n", reports[0].Schedule)
	}
	fmt.Printf("\nfalse flags: %d   accusations held real tamper: %d/%d tampered runs detected\n",
		falseFlags, detected, tampered)

	if violations == 0 {
		fmt.Println("invariants: ok")
		if tampered > 0 && detected < tampered {
			return fmt.Errorf("%d of %d tampered runs went undetected", tampered-detected, tampered)
		}
		return nil
	}

	// At least one invariant broke: print every violation and a
	// one-line reproducer for each failing seed, shrinking first when
	// asked to.
	fmt.Printf("invariants: VIOLATED (%d)\n", violations)
	for _, rep := range reports {
		if rep.OK() {
			continue
		}
		for _, v := range rep.Violations {
			fmt.Printf("  seed %d: %s\n", rep.Seed, v)
		}
		if f.Shrink {
			cfg := chaos.Defaults(rep.Seed)
			cfg.Tamper = f.Tamper
			sched, err := chaos.ParseSchedule(rep.Schedule)
			if err != nil {
				return err
			}
			res, err := chaos.Shrink(cfg, sched, 64)
			if err != nil {
				return err
			}
			fmt.Printf("  shrunk %d steps -> %d (%s, %d runs)\n",
				len(sched), len(res.Schedule), res.Invariant, res.Runs)
			fmt.Printf("  repro: %s\n", res.Repro())
		} else {
			fmt.Printf("  repro: %s\n", rep.Repro())
		}
	}
	return fmt.Errorf("%d invariant violations across %d runs", violations, f.Runs)
}
