// Command seccloud-sim runs the epoch-based mobile-adversary simulation
// (§III-B / HAIL model): b of n servers are corrupted each epoch, jobs
// keep flowing, and the DA audits with a per-sub-job sampling budget.
//
// Usage:
//
//	seccloud-sim                               # default scenario
//	seccloud-sim -servers 8 -corrupted 2 -epochs 10 -samples 4
//	seccloud-sim -sweep                        # exposure vs audit budget
package main

import (
	"flag"
	"fmt"
	"os"

	"seccloud/internal/epoch"
)

func main() {
	var (
		servers   = flag.Int("servers", 5, "fleet size n")
		corrupted = flag.Int("corrupted", 1, "adversary budget b per epoch")
		epochs    = flag.Int("epochs", 6, "number of epochs")
		blocks    = flag.Int("blocks", 20, "outsourced blocks per user")
		jobs      = flag.Int("jobs", 2, "jobs per epoch")
		samples   = flag.Int("samples", 3, "audit sample size t per sub-job")
		csc       = flag.Float64("csc", 0.3, "cheater computing confidence")
		seed      = flag.Int64("seed", 1, "simulation seed")
		sweep     = flag.Bool("sweep", false, "sweep audit budget t = 0..8 and report exposure")
	)
	flag.Parse()

	base := epoch.Config{
		Servers:       *servers,
		Corrupted:     *corrupted,
		Epochs:        *epochs,
		BlocksPerUser: *blocks,
		JobsPerEpoch:  *jobs,
		SampleSize:    *samples,
		CheaterCSC:    *csc,
		Seed:          *seed,
	}

	if *sweep {
		if err := runSweep(base); err != nil {
			fmt.Fprintln(os.Stderr, "seccloud-sim:", err)
			os.Exit(1)
		}
		return
	}
	if err := runOnce(base); err != nil {
		fmt.Fprintln(os.Stderr, "seccloud-sim:", err)
		os.Exit(1)
	}
}

func runOnce(cfg epoch.Config) error {
	res, err := epoch.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("fleet n=%d, adversary b=%d (CSC=%.2f), %d epochs × %d jobs, audit t=%d\n\n",
		cfg.Servers, cfg.Corrupted, cfg.CheaterCSC, cfg.Epochs, cfg.JobsPerEpoch, cfg.SampleSize)
	fmt.Printf("%6s %14s %8s %8s %10s %9s %9s\n",
		"epoch", "corrupted", "jobs", "audits", "detections", "flagged", "exposure")
	for _, ep := range res.Epochs {
		fmt.Printf("%6d %14v %8d %8d %10d %9v %9d\n",
			ep.Epoch, ep.CorruptedServers, ep.JobsRun, ep.AuditsRun,
			ep.Detections, ep.FlaggedServers, ep.CorruptResultsAccepted)
	}
	fmt.Printf("\nfirst detection: epoch %d   total exposure: %d corrupt results   false flags: %d\n",
		res.FirstDetectionEpoch, res.TotalExposure, res.FalseFlags)
	return nil
}

func runSweep(base epoch.Config) error {
	fmt.Printf("exposure vs audit budget (n=%d, b=%d, CSC=%.2f, %d epochs × %d jobs)\n\n",
		base.Servers, base.Corrupted, base.CheaterCSC, base.Epochs, base.JobsPerEpoch)
	fmt.Printf("%8s %12s %16s %12s\n", "t", "detections", "first detection", "exposure")
	for t := 0; t <= 8; t++ {
		cfg := base
		cfg.SampleSize = t
		res, err := epoch.Run(cfg)
		if err != nil {
			return err
		}
		detections := 0
		for _, ep := range res.Epochs {
			detections += ep.Detections
		}
		first := "-"
		if res.FirstDetectionEpoch > 0 {
			first = fmt.Sprintf("epoch %d", res.FirstDetectionEpoch)
		}
		fmt.Printf("%8d %12d %16s %12d\n", t, detections, first, res.TotalExposure)
	}
	fmt.Println("\nreading: larger audit budgets catch the mobile adversary sooner and")
	fmt.Println("cut the number of corrupt results the user ever accepts.")
	return nil
}
