// Command seccloud-sim runs the epoch-based mobile-adversary simulation
// (§III-B / HAIL model): b of n servers are corrupted each epoch, jobs
// keep flowing, and the DA audits with a per-sub-job sampling budget.
//
// Usage:
//
//	seccloud-sim                               # default scenario
//	seccloud-sim -servers 8 -corrupted 2 -epochs 10 -samples 4
//	seccloud-sim -sweep                        # exposure vs audit budget
//	seccloud-sim -fault-drop 0.3               # audit under a lossy network
//	seccloud-sim -fault-sweep                  # audit success rate vs loss rate
//	seccloud-sim -workers 8                    # parallel audit verification
//	seccloud-sim -wal-dir /tmp/sc -crash-every 2   # crash + WAL-recover servers
//	seccloud-sim -kill-every 2 -fleet-samples 8    # whole-epoch outages + fleet audits
//	seccloud-sim -bad-replica 1 -bad-replica-epoch 2 -repair   # rot, localize, repair
//	seccloud-sim -overload-every 2 -offered-load 6 -max-inflight 1 \
//	    -queue-limit 2 -retry-budget 8 -degrade -hedge         # open-loop overload schedule
//	seccloud-sim -threshold-t 2 -threshold-n 5 -killed-auditors 2 \
//	    -byzantine-auditors 1                   # t-of-n audit quorums under auditor faults
//	seccloud-sim -chaos -chaos-seed 7           # one seeded composed-fault schedule
//	seccloud-sim -chaos -chaos-runs 8 -chaos-tamper   # fixed-seed schedule sweep
//	seccloud-sim -chaos -chaos-seed 5 -chaos-steps "e1:plant(lost-write,2)"   # replay a repro line
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"seccloud/internal/epoch"
	"seccloud/internal/obs"
)

func main() {
	var (
		servers      = flag.Int("servers", 5, "fleet size n")
		corrupted    = flag.Int("corrupted", 1, "adversary budget b per epoch")
		epochs       = flag.Int("epochs", 6, "number of epochs")
		blocks       = flag.Int("blocks", 20, "outsourced blocks per user")
		jobs         = flag.Int("jobs", 2, "jobs per epoch")
		samples      = flag.Int("samples", 3, "audit sample size t per sub-job")
		csc          = flag.Float64("csc", 0.3, "cheater computing confidence")
		seed         = flag.Int64("seed", 1, "simulation seed (also drives fault injection)")
		workers      = flag.Int("workers", 1, "audit/hashing worker pool size (1 = sequential; outcomes never depend on this)")
		sweep        = flag.Bool("sweep", false, "sweep audit budget t = 0..8 and report exposure")
		faultDrop    = flag.Float64("fault-drop", 0, "per-message-leg drop probability [0,1]")
		faultCorrupt = flag.Float64("fault-corrupt", 0, "per-leg frame corruption probability [0,1]")
		faultDelay   = flag.Duration("fault-delay", 0, "extra modeled latency per message leg")
		retries      = flag.Int("retries", 0, "CSP retry attempts per message (0 = auto)")
		faultSweep   = flag.Bool("fault-sweep", false, "sweep drop rate 0..0.5 and report audit success rate")
		walDir       = flag.String("wal-dir", "", "root directory for per-server WAL+snapshot durability (empty = in-memory servers)")
		snapEvery    = flag.Int("snapshot-every", 0, "log records between snapshots (0 = default cadence)")
		crashEvery   = flag.Int("crash-every", 0, "kill+recover one server every N epochs (0 = never; requires -wal-dir)")
		crashPoint   = flag.String("crash-point", "", "injected crash point: before-log|after-log|mid-snapshot|torn-tail (default after-log)")
		killEvery    = flag.Int("kill-every", 0, "take one server down for every Nth whole epoch (0 = never)")
		fleetSamples = flag.Int("fleet-samples", 0, "fleet storage audit sample size per server per epoch (0 = no fleet audits)")
		quorumK      = flag.Int("quorum-k", 0, "witness replicas per BadProof cross-examination (0 = default 2)")
		repair       = flag.Bool("repair", false, "execute audit-driven repair for localized corruption")
		badReplica   = flag.Int("bad-replica", 0, "replica index to silently corrupt (with -bad-replica-epoch)")
		badEpoch     = flag.Int("bad-replica-epoch", 0, "epoch at which the bad replica's blocks rot (0 = never)")
		badBlocks    = flag.Int("bad-blocks", 2, "number of blocks that rot on the bad replica")
		admin        = flag.String("admin", "", "serve /metrics, /traces, /healthz and pprof on this address (e.g. 127.0.0.1:6060 or :0; empty = off)")
		adminLinger  = flag.Duration("admin-linger", 0, "keep the admin endpoint up this long after the run (requires -admin)")
		maxInflight  = flag.Int("max-inflight", 0, "per-server admission execution slots (0 = no admission control)")
		queueLimit   = flag.Int("queue-limit", 4, "admission queue slots per server; -1 = unbounded FIFO baseline (requires -max-inflight)")
		serviceTime  = flag.Duration("service-time", 0, "real wall-clock service time charged per request while an admission slot is held")
		overloadEvry = flag.Int("overload-every", 0, "fire an open-loop burst every Nth epoch (0 = never; requires -max-inflight)")
		offeredLoad  = flag.Float64("offered-load", 0, "burst offered load as a multiple of fleet capacity (0 = default 4)")
		auditDeadlin = flag.Duration("audit-deadline", 0, "per-audit deadline propagated through every challenge round (0 = none)")
		retryBudget  = flag.Int("retry-budget", 0, "per-audit retry token budget shared across rounds (0 = unlimited)")
		degrade      = flag.Bool("degrade", false, "let the DA shrink audit samples along the Theorem-3 curve under overload")
		hedge        = flag.Bool("hedge", false, "hedge slow fleet challenge rounds to a second healthy replica")
		multitenant  = flag.Bool("multitenant", false, "run the multi-tenant scheduler simulation instead of the fleet one")
		tenants      = flag.Int("tenants", 100_000, "registered tenant population (multi-tenant mode)")
		tenantSess   = flag.Int("tenant-sessions", 40, "audit sessions per epoch drawn from the Zipf trace")
		tenantZipf   = flag.Float64("tenant-zipf", 1.3, "Zipf traffic skew exponent (> 1)")
		tenantBlocks = flag.Int("tenant-blocks", 8, "stored blocks per materialized tenant")
		crossBatch   = flag.Bool("cross-batch", true, "fold all tenants' signature checks into shared aggregates (false = per-tenant baseline)")
		flushLimit   = flag.Int("flush-limit", 0, "signature checks per cross-tenant aggregate (0 = one flush per drain)")
		tamperEpoch  = flag.Int("tamper-epoch", 0, "epoch at which one tenant's stored blocks rot (0 = never)")
		tamperRank   = flag.Int("tamper-rank", 0, "Zipf rank of the tampered tenant (0 = traffic head)")
		thresholdT   = flag.Int("threshold-t", 0, "audit quorum size t: split the verifier key t-of-n and run the threshold-agency scenario (0 = off)")
		thresholdN   = flag.Int("threshold-n", 0, "share-holder count n for the threshold-agency scenario")
		killedAud    = flag.Int("killed-auditors", 0, "share-holders down during each faulty epoch (rotating; threshold mode)")
		byzantineAud = flag.Int("byzantine-auditors", 0, "live share-holders forging partials each faulty epoch (threshold mode)")
		chaosMode    = flag.Bool("chaos", false, "run the seed-deterministic chaos nemesis + invariant engine instead of the fleet simulation")
		chaosSeed    = flag.Int64("chaos-seed", 1, "chaos schedule seed (chaos mode; the repro-line seed)")
		chaosSteps   = flag.String("chaos-steps", "", "explicit chaos schedule, e.g. from a printed repro line (chaos mode)")
		chaosRuns    = flag.Int("chaos-runs", 1, "run this many consecutive seeds starting at -chaos-seed (chaos mode)")
		chaosTamper  = flag.Bool("chaos-tamper", false, "include a real cheating replica in each generated chaos schedule")
		chaosShrink  = flag.Bool("chaos-shrink", false, "minimize any failing chaos run to a one-line repro before printing it")
	)
	flag.Parse()

	if err := validateFlags(simFlags{
		ThresholdT:        *thresholdT,
		ThresholdN:        *thresholdN,
		KilledAuditors:    *killedAud,
		ByzantineAuditors: *byzantineAud,
		AuditDeadline:     *auditDeadlin,
		RetryBudget:       *retryBudget,
		Chaos:             *chaosMode,
		ChaosSteps:        *chaosSteps,
		ChaosRuns:         *chaosRuns,
		ChaosTamper:       *chaosTamper,
		ChaosShrink:       *chaosShrink,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "seccloud-sim:", err)
		os.Exit(2)
	}

	base := epoch.Config{
		Servers:           *servers,
		Corrupted:         *corrupted,
		Epochs:            *epochs,
		BlocksPerUser:     *blocks,
		JobsPerEpoch:      *jobs,
		SampleSize:        *samples,
		CheaterCSC:        *csc,
		Seed:              *seed,
		Workers:           *workers,
		FaultDrop:         *faultDrop,
		FaultCorrupt:      *faultCorrupt,
		FaultDelay:        *faultDelay,
		RetryAttempts:     *retries,
		WALDir:            *walDir,
		SnapshotEvery:     *snapEvery,
		CrashEvery:        *crashEvery,
		CrashPoint:        *crashPoint,
		KillEvery:         *killEvery,
		FleetSampleSize:   *fleetSamples,
		QuorumK:           *quorumK,
		Repair:            *repair,
		BadReplica:        *badReplica,
		BadReplicaEpoch:   *badEpoch,
		BadBlocks:         *badBlocks,
		MaxInflight:       *maxInflight,
		QueueLimit:        *queueLimit,
		ServiceTime:       *serviceTime,
		OverloadEvery:     *overloadEvry,
		OfferedLoad:       *offeredLoad,
		AuditDeadline:     *auditDeadlin,
		RetryBudgetTokens: *retryBudget,
		DegradeSampling:   *degrade,
		HedgeFleetRounds:  *hedge,
	}

	var adminSrv *obs.AdminServer
	if *admin != "" {
		hub := obs.NewHub()
		srv, err := hub.ListenAndServe(*admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seccloud-sim:", err)
			os.Exit(1)
		}
		adminSrv = srv
		base.Hub = hub
		fmt.Printf("admin endpoint listening on http://%s/metrics\n", srv.Addr())
	}

	var err error
	switch {
	case *chaosMode:
		err = runChaos(chaosRunFlags{
			Seed:   *chaosSeed,
			Steps:  *chaosSteps,
			Runs:   *chaosRuns,
			Tamper: *chaosTamper,
			Shrink: *chaosShrink,
		})
	case *thresholdT > 0 || *thresholdN > 0:
		err = runThreshold(epoch.ThresholdConfig{
			T: *thresholdT, N: *thresholdN,
			Epochs:           *epochs,
			Blocks:           *blocks,
			SampleSize:       *samples,
			CrashedHolders:   *killedAud,
			ByzantineHolders: *byzantineAud,
			TamperEpoch:      *tamperEpoch,
			Workers:          *workers,
			Seed:             *seed,
			Hub:              base.Hub,
		})
	case *multitenant:
		err = runMultiTenant(epoch.MultiTenantConfig{
			Tenants:          *tenants,
			SessionsPerEpoch: *tenantSess,
			Epochs:           *epochs,
			ZipfS:            *tenantZipf,
			BlocksPerTenant:  *tenantBlocks,
			SampleSize:       *samples,
			Workers:          *workers,
			CrossTenantBatch: *crossBatch,
			FlushLimit:       *flushLimit,
			TamperEpoch:      *tamperEpoch,
			TamperRank:       *tamperRank,
			Seed:             *seed,
			Hub:              base.Hub,
		})
	case *faultSweep:
		err = runFaultSweep(base)
	case *sweep:
		err = runSweep(base)
	default:
		err = runOnce(base)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "seccloud-sim:", err)
		os.Exit(1)
	}
	if adminSrv != nil {
		if *adminLinger > 0 {
			fmt.Printf("admin endpoint up for another %v (scrape http://%s/metrics)\n", *adminLinger, adminSrv.Addr())
			time.Sleep(*adminLinger)
		}
		_ = adminSrv.Close()
	}
}

// runFaultSweep sweeps the per-leg drop rate and reports how audit
// completeness and detection degrade — and that false flags stay at zero
// no matter how lossy the links get.
func runFaultSweep(base epoch.Config) error {
	fmt.Printf("audit resilience vs loss rate (n=%d, b=%d, CSC=%.2f, t=%d, %d epochs × %d jobs)\n\n",
		base.Servers, base.Corrupted, base.CheaterCSC, base.SampleSize, base.Epochs, base.JobsPerEpoch)
	fmt.Printf("%10s %14s %12s %12s %12s %12s %12s\n",
		"drop rate", "audit success", "net faults", "detections", "exposure", "jobs failed", "false flags")
	for _, drop := range []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5} {
		cfg := base
		cfg.FaultDrop = drop
		res, err := epoch.Run(cfg)
		if err != nil {
			return err
		}
		detections := 0
		for _, ep := range res.Epochs {
			detections += ep.Detections
		}
		fmt.Printf("%10.2f %13.1f%% %12d %12d %12d %12d %12d\n",
			drop, 100*res.AuditSuccessRate(), res.NetworkFaultRounds,
			detections, res.TotalExposure, res.JobsFailed, res.FalseFlags)
	}
	fmt.Println("\nreading: lost challenge rounds shrink the effective sample (lower audit")
	fmt.Println("success) but are never converted into cheating evidence — false flags stay 0.")
	return nil
}

func runOnce(cfg epoch.Config) error {
	res, err := epoch.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("fleet n=%d, adversary b=%d (CSC=%.2f), %d epochs × %d jobs, audit t=%d\n\n",
		cfg.Servers, cfg.Corrupted, cfg.CheaterCSC, cfg.Epochs, cfg.JobsPerEpoch, cfg.SampleSize)
	fmt.Printf("%6s %14s %8s %8s %10s %9s %9s\n",
		"epoch", "corrupted", "jobs", "audits", "detections", "flagged", "exposure")
	for _, ep := range res.Epochs {
		fmt.Printf("%6d %14v %8d %8d %10d %9v %9d\n",
			ep.Epoch, ep.CorruptedServers, ep.JobsRun, ep.AuditsRun,
			ep.Detections, ep.FlaggedServers, ep.CorruptResultsAccepted)
	}
	fmt.Printf("\nfirst detection: epoch %d   total exposure: %d corrupt results   false flags: %d\n",
		res.FirstDetectionEpoch, res.TotalExposure, res.FalseFlags)
	if cfg.CrashEvery > 0 {
		point := cfg.CrashPoint
		if point == "" {
			point = "after-log"
		}
		fmt.Printf("crash schedule: %d crashes at %q, %d WAL recoveries (all must keep audits green)\n",
			res.Crashes, point, res.Recoveries)
	}
	if cfg.FaultDrop > 0 || cfg.FaultCorrupt > 0 || cfg.FaultDelay > 0 {
		fmt.Printf("network faults: %d challenge rounds lost, %d/%d audits degraded (%.1f%% success), %d jobs failed\n",
			res.NetworkFaultRounds, res.DegradedAudits, res.AuditsRun,
			100*res.AuditSuccessRate(), res.JobsFailed)
	}
	if res.Kills > 0 || res.FleetAudits > 0 {
		fmt.Printf("fleet: %d outages, %d sub-jobs failed over, %d/%d fleet audits full-sample (availability %.1f%%), %d audit rounds re-issued\n",
			res.Kills, res.JobFailovers,
			res.FleetAudits-res.DegradedFleetAudits, res.FleetAudits,
			100*res.FleetAvailability(), res.FleetFailovers)
	}
	if cfg.OverloadEvery > 0 || cfg.MaxInflight > 0 {
		fmt.Printf("overload: %d burst requests fired, %d shed at admission (peak queue %d), %d audit rounds shed\n",
			res.BurstsFired, res.RequestsShed, res.MaxQueueDepth, res.ShedRounds)
		fmt.Printf("protection: %d retries denied by budget, %d rounds hedged, %d audits degraded by design\n",
			res.BudgetDenied, res.HedgedRounds, res.OverloadDegradedAudits)
	}
	if res.LocalizedVerdicts+res.ProviderWideVerdicts+res.InconclusiveVerdicts > 0 {
		fmt.Printf("quorum verdicts: %d localized, %d provider-wide, %d inconclusive; repairs: %d attempted, %d confirmed\n",
			res.LocalizedVerdicts, res.ProviderWideVerdicts, res.InconclusiveVerdicts,
			res.RepairsAttempted, res.RepairsConfirmed)
	}

	// End-of-run summary read back from the metrics registry — an
	// independent accumulation that must agree with the counts above.
	m := res.Metrics
	fmt.Printf("\nmetrics registry summary\n")
	fmt.Printf("%12s %14s %12s %12s %10s %10s %12s\n",
		"job audits", "fleet audits", "net faults", "failovers", "repairs", "confirmed", "false flags")
	fmt.Printf("%12d %14d %12d %12d %10d %10d %12d\n",
		m.AuditsRun, m.FleetAudits, m.NetworkFaultRounds, m.FleetFailovers,
		m.RepairsAttempted, m.RepairsConfirmed, m.FalseFlags)
	return nil
}

func runSweep(base epoch.Config) error {
	fmt.Printf("exposure vs audit budget (n=%d, b=%d, CSC=%.2f, %d epochs × %d jobs)\n\n",
		base.Servers, base.Corrupted, base.CheaterCSC, base.Epochs, base.JobsPerEpoch)
	fmt.Printf("%8s %12s %16s %12s\n", "t", "detections", "first detection", "exposure")
	for t := 0; t <= 8; t++ {
		cfg := base
		cfg.SampleSize = t
		res, err := epoch.Run(cfg)
		if err != nil {
			return err
		}
		detections := 0
		for _, ep := range res.Epochs {
			detections += ep.Detections
		}
		first := "-"
		if res.FirstDetectionEpoch > 0 {
			first = fmt.Sprintf("epoch %d", res.FirstDetectionEpoch)
		}
		fmt.Printf("%8d %12d %16s %12d\n", t, detections, first, res.TotalExposure)
	}
	fmt.Println("\nreading: larger audit budgets catch the mobile adversary sooner and")
	fmt.Println("cut the number of corrupt results the user ever accepts.")
	return nil
}
