package main

import (
	"fmt"
	"time"
)

// simFlags holds the flag values that can be rejected before any
// simulation state is built.
type simFlags struct {
	ThresholdT        int
	ThresholdN        int
	KilledAuditors    int
	ByzantineAuditors int
	AuditDeadline     time.Duration
	RetryBudget       int
}

// validateFlags rejects inconsistent flag combinations up front with a
// clean one-line error instead of letting them surface as mid-run
// aborts or blame-less quorum failures.
func validateFlags(f simFlags) error {
	if f.AuditDeadline < 0 {
		return fmt.Errorf("-audit-deadline must not be negative (got %v)", f.AuditDeadline)
	}
	if f.RetryBudget < 0 {
		return fmt.Errorf("-retry-budget must not be negative (got %d)", f.RetryBudget)
	}
	if f.KilledAuditors < 0 {
		return fmt.Errorf("-killed-auditors must not be negative (got %d)", f.KilledAuditors)
	}
	if f.ByzantineAuditors < 0 {
		return fmt.Errorf("-byzantine-auditors must not be negative (got %d)", f.ByzantineAuditors)
	}
	if f.ThresholdT == 0 && f.ThresholdN == 0 {
		if f.KilledAuditors > 0 || f.ByzantineAuditors > 0 {
			return fmt.Errorf("-killed-auditors/-byzantine-auditors require threshold mode (-threshold-t/-threshold-n)")
		}
		return nil // threshold mode off
	}
	if f.ThresholdT < 1 {
		return fmt.Errorf("-threshold-t must be at least 1 (got %d)", f.ThresholdT)
	}
	if f.ThresholdT > f.ThresholdN {
		return fmt.Errorf("-threshold-t %d exceeds -threshold-n %d", f.ThresholdT, f.ThresholdN)
	}
	if budget := f.ThresholdN - f.ThresholdT; f.KilledAuditors+f.ByzantineAuditors > budget {
		return fmt.Errorf("%d killed + %d byzantine auditors exceed the n-t = %d fault budget",
			f.KilledAuditors, f.ByzantineAuditors, budget)
	}
	return nil
}
