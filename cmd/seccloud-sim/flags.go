package main

import (
	"fmt"
	"time"
)

// simFlags holds the flag values that can be rejected before any
// simulation state is built.
type simFlags struct {
	ThresholdT        int
	ThresholdN        int
	KilledAuditors    int
	ByzantineAuditors int
	AuditDeadline     time.Duration
	RetryBudget       int
	Chaos             bool
	ChaosSteps        string
	ChaosRuns         int
	ChaosTamper       bool
	ChaosShrink       bool
}

// validateFlags rejects inconsistent flag combinations up front with a
// clean one-line error instead of letting them surface as mid-run
// aborts or blame-less quorum failures.
func validateFlags(f simFlags) error {
	if f.AuditDeadline < 0 {
		return fmt.Errorf("-audit-deadline must not be negative (got %v)", f.AuditDeadline)
	}
	if f.RetryBudget < 0 {
		return fmt.Errorf("-retry-budget must not be negative (got %d)", f.RetryBudget)
	}
	if f.KilledAuditors < 0 {
		return fmt.Errorf("-killed-auditors must not be negative (got %d)", f.KilledAuditors)
	}
	if f.ByzantineAuditors < 0 {
		return fmt.Errorf("-byzantine-auditors must not be negative (got %d)", f.ByzantineAuditors)
	}
	if !f.Chaos {
		// ChaosRuns is 0 when the caller never touched the chaos flag
		// block and 1 (the flag default) when it came through main.
		if f.ChaosSteps != "" || f.ChaosRuns > 1 || f.ChaosTamper || f.ChaosShrink {
			return fmt.Errorf("-chaos-steps/-chaos-runs/-chaos-tamper/-chaos-shrink require chaos mode (-chaos)")
		}
	} else {
		if f.ThresholdT > 0 || f.ThresholdN > 0 {
			return fmt.Errorf("-chaos and -threshold-t/-threshold-n are mutually exclusive modes")
		}
		if f.ChaosRuns < 1 {
			return fmt.Errorf("-chaos-runs must be at least 1 (got %d)", f.ChaosRuns)
		}
		if f.ChaosSteps != "" && f.ChaosRuns != 1 {
			return fmt.Errorf("-chaos-steps replays one explicit schedule; drop -chaos-runs %d", f.ChaosRuns)
		}
		if f.ChaosSteps != "" && f.ChaosTamper {
			return fmt.Errorf("-chaos-tamper shapes generated schedules; an explicit -chaos-steps schedule carries its own tamper steps")
		}
	}
	if f.ThresholdT == 0 && f.ThresholdN == 0 {
		if f.KilledAuditors > 0 || f.ByzantineAuditors > 0 {
			return fmt.Errorf("-killed-auditors/-byzantine-auditors require threshold mode (-threshold-t/-threshold-n)")
		}
		return nil // threshold mode off
	}
	if f.ThresholdT < 1 {
		return fmt.Errorf("-threshold-t must be at least 1 (got %d)", f.ThresholdT)
	}
	if f.ThresholdT > f.ThresholdN {
		return fmt.Errorf("-threshold-t %d exceeds -threshold-n %d", f.ThresholdT, f.ThresholdN)
	}
	if budget := f.ThresholdN - f.ThresholdT; f.KilledAuditors+f.ByzantineAuditors > budget {
		return fmt.Errorf("%d killed + %d byzantine auditors exceed the n-t = %d fault budget",
			f.KilledAuditors, f.ByzantineAuditors, budget)
	}
	return nil
}
