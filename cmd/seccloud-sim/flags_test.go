package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		flags   simFlags
		wantErr string // empty = accepted
	}{
		{name: "defaults", flags: simFlags{}},
		{name: "threshold healthy", flags: simFlags{ThresholdT: 3, ThresholdN: 5}},
		{name: "threshold with faults in budget",
			flags: simFlags{ThresholdT: 2, ThresholdN: 5, KilledAuditors: 2, ByzantineAuditors: 1}},
		{name: "deadline and budget set",
			flags: simFlags{AuditDeadline: time.Second, RetryBudget: 8}},
		{name: "t above n",
			flags:   simFlags{ThresholdT: 6, ThresholdN: 5},
			wantErr: "-threshold-t 6 exceeds -threshold-n 5"},
		{name: "t below one",
			flags:   simFlags{ThresholdT: 0, ThresholdN: 5},
			wantErr: "-threshold-t must be at least 1"},
		{name: "negative t",
			flags:   simFlags{ThresholdT: -2, ThresholdN: 5},
			wantErr: "-threshold-t must be at least 1"},
		{name: "negative deadline",
			flags:   simFlags{AuditDeadline: -time.Second},
			wantErr: "-audit-deadline must not be negative"},
		{name: "negative retry budget",
			flags:   simFlags{RetryBudget: -1},
			wantErr: "-retry-budget must not be negative"},
		{name: "negative killed auditors",
			flags:   simFlags{ThresholdT: 3, ThresholdN: 5, KilledAuditors: -1},
			wantErr: "-killed-auditors must not be negative"},
		{name: "negative byzantine auditors",
			flags:   simFlags{ThresholdT: 3, ThresholdN: 5, ByzantineAuditors: -3},
			wantErr: "-byzantine-auditors must not be negative"},
		{name: "fault schedule over budget",
			flags:   simFlags{ThresholdT: 3, ThresholdN: 5, KilledAuditors: 2, ByzantineAuditors: 1},
			wantErr: "exceed the n-t = 2 fault budget"},
		{name: "auditor faults without threshold mode",
			flags:   simFlags{KilledAuditors: 1},
			wantErr: "require threshold mode"},
		{name: "chaos sweep", flags: simFlags{Chaos: true, ChaosRuns: 6, ChaosTamper: true}},
		{name: "chaos replay",
			flags: simFlags{Chaos: true, ChaosRuns: 1, ChaosSteps: "e1:plant(forged-evidence,1)", ChaosShrink: true}},
		{name: "chaos sub-flags without chaos mode",
			flags:   simFlags{ChaosTamper: true},
			wantErr: "require chaos mode"},
		{name: "chaos steps without chaos mode",
			flags:   simFlags{ChaosSteps: "e1:restart(0)"},
			wantErr: "require chaos mode"},
		{name: "chaos and threshold at once",
			flags:   simFlags{Chaos: true, ChaosRuns: 1, ThresholdT: 2, ThresholdN: 5},
			wantErr: "mutually exclusive modes"},
		{name: "chaos runs below one",
			flags:   simFlags{Chaos: true, ChaosRuns: 0},
			wantErr: "-chaos-runs must be at least 1"},
		{name: "chaos steps with a sweep",
			flags:   simFlags{Chaos: true, ChaosRuns: 4, ChaosSteps: "e1:restart(0)"},
			wantErr: "replays one explicit schedule"},
		{name: "chaos steps with tamper",
			flags:   simFlags{Chaos: true, ChaosRuns: 1, ChaosSteps: "e1:restart(0)", ChaosTamper: true},
			wantErr: "carries its own tamper steps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.flags)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid flags rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid flags accepted: %+v", tc.flags)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
