package main

import (
	"fmt"
	"strconv"
	"strings"

	"seccloud/internal/epoch"
)

// runThreshold drives the t-of-n threshold-agency scenario: every
// epoch's storage audit is decided by a quorum of partial designated
// verifications while killed and Byzantine share-holders rotate, and a
// single-DA reference audit cross-checks every verdict.
func runThreshold(cfg epoch.ThresholdConfig) error {
	res, err := epoch.RunThreshold(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("threshold agency %d-of-%d: %d epochs, %d killed + %d byzantine holders rotating per epoch\n\n",
		cfg.T, cfg.N, cfg.Epochs, cfg.CrashedHolders, cfg.ByzantineHolders)
	fmt.Printf("%6s %12s %12s %12s %11s %7s %10s %7s\n",
		"epoch", "killed", "byzantine", "quorum", "recoveries", "valid", "detection", "agrees")
	for _, ep := range res.Epochs {
		fmt.Printf("%6d %12s %12s %12s %11d %7v %10v %7v\n",
			ep.Epoch, joinIndices(ep.Crashed), joinIndices(ep.Byzantine), joinIndices(ep.Quorum),
			ep.Recoveries, ep.Valid, ep.Detection, ep.AgreesWithSingleDA)
	}
	fmt.Printf("\nquorum recoveries: %d   byzantine partials caught: %d   distinct quorums: %d\n",
		res.QuorumRecoveries, res.ByzantinePartials, res.DistinctQuorums)
	fmt.Printf("false flags: %d   verdict mismatches vs single-DA: %d\n",
		res.FalseFlags, res.VerdictMismatches)
	if res.FirstDetectionEpoch > 0 {
		fmt.Printf("first tamper detection: epoch %d (%d detections)\n",
			res.FirstDetectionEpoch, res.Detections)
	}

	// Registry-derived cross-check, accumulated independently of the
	// per-epoch trails printed above.
	m := res.Metrics
	fmt.Printf("\nmetrics registry summary\n")
	fmt.Printf("%8s %12s %14s %12s\n", "audits", "recoveries", "byz partials", "false flags")
	fmt.Printf("%8d %12d %14d %12d\n", m.Audits, m.Recoveries, m.Byzantine, m.FalseFlags)
	fmt.Println("\nreading: crashed holders are replaced by later shares and forged")
	fmt.Println("partials are pinned on their share-holder by commitment proofs —")
	fmt.Println("auditor faults change who computes the verdict, never what it says.")
	return nil
}

func joinIndices(idx []int) string {
	if len(idx) == 0 {
		return "-"
	}
	parts := make([]string, len(idx))
	for i, v := range idx {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}
