package seccloud

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"seccloud/internal/funcs"
	"seccloud/internal/workload"
)

func newTestSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(ParamInsecureTest256)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestNewSystemRejectsUnknownParams(t *testing.T) {
	if _, err := NewSystem(ParamSet(99)); err == nil {
		t.Fatal("unknown parameter set accepted")
	}
	if _, err := NewSystemDeterministic(ParamSet(0), 1); err == nil {
		t.Fatal("unknown parameter set accepted")
	}
	if _, err := MeasureOps(ParamSet(42), 1); err == nil {
		t.Fatal("unknown parameter set accepted")
	}
}

func TestDeterministicSystemsAgree(t *testing.T) {
	s1, err := NewSystemDeterministic(ParamInsecureTest256, 7)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSystemDeterministic(ParamInsecureTest256, 7)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := s1.ExtractKey("user:x")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s2.ExtractKey("user:x")
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Params().G1().Equal(k1.SK, k2.SK) {
		t.Fatal("same seed produced different keys")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	sys := newTestSystem(t)
	user, err := sys.NewUser("user:alice")
	if err != nil {
		t.Fatal(err)
	}
	server, err := sys.NewServer("cs:1", ServerConfig{VerifyOnStore: true})
	if err != nil {
		t.Fatal(err)
	}
	auditor, err := sys.NewAuditor("da:tpa")
	if err != nil {
		t.Fatal(err)
	}
	link := Loopback(server)

	gen := NewGenerator(1)
	ds := gen.GenDataset(user.ID(), 8, 8)
	req, err := user.PrepareStore(ds, server.ID(), auditor.ID())
	if err != nil {
		t.Fatal(err)
	}
	if err := user.Store(link, req); err != nil {
		t.Fatal(err)
	}
	job := workload.UniformJob(user.ID(), funcs.Spec{Name: "sum"}, 8)
	resp, err := user.SubmitJob(link, "fj", job)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Delegate(user, auditor.ID(), "fj", job, resp, time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	report, err := auditor.AuditJob(link, d, AuditConfig{
		SampleSize: 4, Rng: rand.New(rand.NewSource(1)), BatchSignatures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Valid() {
		t.Fatalf("honest facade flow failed audit: %+v", report.Failures)
	}
}

func TestFacadeTCP(t *testing.T) {
	sys := newTestSystem(t)
	server, err := sys.NewServer("cs:tcp", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeTCP("127.0.0.1:0", server)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	user, err := sys.NewUser("user:t")
	if err != nil {
		t.Fatal(err)
	}
	ds := NewGenerator(2).GenDataset(user.ID(), 2, 4)
	req, err := user.PrepareStore(ds, server.ID())
	if err != nil {
		t.Fatal(err)
	}
	if err := user.Store(client, req); err != nil {
		t.Fatalf("store over facade TCP: %v", err)
	}
}

func TestFacadeCheatDetection(t *testing.T) {
	sys := newTestSystem(t)
	user, err := sys.NewUser("user:v")
	if err != nil {
		t.Fatal(err)
	}
	auditor, err := sys.NewAuditor("da:v")
	if err != nil {
		t.Fatal(err)
	}
	server, err := sys.NewServer("cs:v", ServerConfig{
		VerifyOnStore: true,
		Policy:        &ComputationCheater{CSC: 0, Rng: rand.New(rand.NewSource(3))},
	})
	if err != nil {
		t.Fatal(err)
	}
	link := Loopback(server)
	ds := NewGenerator(3).GenDataset(user.ID(), 6, 4)
	req, err := user.PrepareStore(ds, server.ID(), auditor.ID())
	if err != nil {
		t.Fatal(err)
	}
	if err := user.Store(link, req); err != nil {
		t.Fatal(err)
	}
	job := workload.UniformJob(user.ID(), funcs.Spec{Name: "digest"}, 6)
	resp, err := user.SubmitJob(link, "cheat", job)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Delegate(user, auditor.ID(), "cheat", job, resp, time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	report, err := auditor.AuditJob(link, d, AuditConfig{SampleSize: 3, Rng: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	if report.Valid() {
		t.Fatal("facade audit missed a total cheater")
	}
}

func TestFacadeSamplingHelpers(t *testing.T) {
	t33, err := RequiredSampleSize(SamplingParams{CSC: 0.5, SSC: 0.5, R: 2}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if t33 != 33 {
		t.Fatalf("facade RequiredSampleSize = %d, want 33", t33)
	}
	tStar, err := OptimalSampleSize(CostParams{
		A1: 1, A2: 1, A3: 1, CTrans: 1, CComp: 1, CCheat: 1e6, Q: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tStar <= 0 {
		t.Fatalf("facade OptimalSampleSize = %d, want positive", tStar)
	}
}

func TestFacadeMeasureOps(t *testing.T) {
	ops, err := MeasureOps(ParamInsecureTest256, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ops.Pairing <= 0 || ops.PointMul <= 0 {
		t.Fatalf("implausible op times %+v", ops)
	}
}

func TestFacadeLearner(t *testing.T) {
	h, err := NewHistoryLearner(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Observe(Observation{SampleSize: 4, TransBytes: 100, CompCost: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RecommendSampleSize(1, 1, 1, 1e9); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeInfinityRange(t *testing.T) {
	t15, err := RequiredSampleSize(SamplingParams{CSC: 0.5, SSC: 0.5, R: math.Inf(1)}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if t15 != 15 {
		t.Fatalf("R→∞ spot value via facade = %d, want 15", t15)
	}
}
