// Package seccloud is a Go implementation of SecCloud — "SecCloud:
// Bridging Secure Storage and Computation in Cloud" (Wei, Zhu, Cao, Jia,
// Vasilakos; ICDCS 2010 Workshops) — an auditing framework that jointly
// secures outsourced *storage* and outsourced *computation* with
// privacy-cheating discouragement:
//
//   - Cloud users sign every outsourced data block with an identity-based
//     signature and publish only *designated-verifier* forms of it, so the
//     cloud server and a designated agency (DA) can audit, but transcripts
//     convince nobody else — discouraging servers from selling user data.
//   - Cloud servers commit to all computation results in a Merkle hash
//     tree (root signed) before being challenged.
//   - The DA audits by probabilistic sampling (Algorithm 1): per sampled
//     sub-task it checks the block signature (data+position binding),
//     recomputes the result, and reconstructs the commitment root.
//   - Batch verification (§VI) reduces the DA's pairing count to a
//     constant, independent of users and samples.
//
// The package is a facade over the building blocks in internal/: a
// from-scratch SS512 symmetric pairing, the DVS scheme, Merkle
// commitments, a simulated multi-server cloud with Byzantine cheating
// policies, and the sampling/cost analysis. A typical session:
//
//	sys, _ := seccloud.NewSystem(seccloud.ParamInsecureTest256)
//	user, _ := sys.NewUser("user:alice")
//	server, _ := sys.NewServer("cs:1", seccloud.ServerConfig{Random: rand.Reader})
//	auditor, _ := sys.NewAuditor("da:tpa")
//	link := seccloud.Loopback(server)
//	... user.PrepareStore / user.Store / user.SubmitJob ...
//	report, _ := auditor.AuditJob(link, delegation, seccloud.AuditConfig{SampleSize: 15})
package seccloud

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"time"

	"seccloud/internal/core"
	"seccloud/internal/costmodel"
	"seccloud/internal/dvs"
	"seccloud/internal/epoch"
	"seccloud/internal/erasure"
	"seccloud/internal/ibc"
	"seccloud/internal/netsim"
	"seccloud/internal/obs"
	"seccloud/internal/pairing"
	"seccloud/internal/sampling"
	"seccloud/internal/wire"
	"seccloud/internal/workload"
)

// ParamSet selects the pairing parameter set.
type ParamSet int

// Available parameter sets.
const (
	// ParamSS512 is the production set: 512-bit supersingular curve,
	// 160-bit group — the paper's MIRACL SS512 setting.
	ParamSS512 ParamSet = iota + 1
	// ParamInsecureTest256 is a small, fast, INSECURE set for tests,
	// examples and simulations.
	ParamInsecureTest256
)

// Re-exported protocol types. These alias the internal implementations so
// the whole public surface is reachable from this one package.
type (
	// User is a cloud user: signs blocks, submits jobs, delegates audits.
	User = core.User
	// Server is a cloud storage/computation server.
	Server = core.Server
	// ServerConfig shapes a server (cheating policy, clock, randomness).
	ServerConfig = core.ServerConfig
	// Auditor is the designated agency (DA).
	Auditor = core.Agency
	// AuditConfig shapes an audit run (sample size, batching).
	AuditConfig = core.AuditConfig
	// AuditReport is the outcome of a computation audit.
	AuditReport = core.AuditReport
	// StorageAuditReport is the outcome of a stored-data audit.
	StorageAuditReport = core.StorageAuditReport
	// AuditFailure is one detected cheating instance.
	AuditFailure = core.AuditFailure
	// JobDelegation is the audit hand-off from user to DA.
	JobDelegation = core.JobDelegation
	// CheatPolicy is the Byzantine server behaviour hook.
	CheatPolicy = core.CheatPolicy
	// Honest is the well-behaved policy.
	Honest = core.Honest
	// StorageCheater deletes stored payloads (storage-cheating model).
	StorageCheater = core.StorageCheater
	// ComputationCheater guesses results instead of computing (FCS).
	ComputationCheater = core.ComputationCheater
	// PositionCheater computes on wrong-position data (PCS).
	PositionCheater = core.PositionCheater
	// CompositeCheater chains several policies.
	CompositeCheater = core.Composite
	// CSP is the provider scheduler fanning jobs across servers.
	CSP = core.CSP
	// SubJob is one server's slice of a distributed job.
	SubJob = core.SubJob
	// Client is a transport link to one server.
	Client = netsim.Client
	// LinkConfig models loopback link latency/bandwidth.
	LinkConfig = netsim.LinkConfig
	// Dataset is a user's ordered block collection.
	Dataset = workload.Dataset
	// Job is a computing request F with positions P.
	Job = workload.Job
	// Generator produces reproducible datasets and jobs.
	Generator = workload.Generator
	// OpTimes are measured primitive costs (the paper's Table I).
	OpTimes = costmodel.OpTimes
	// SamplingParams are the uncheatability-analysis inputs.
	SamplingParams = sampling.Params
	// CostParams are the total-cost model inputs (eq. 17).
	CostParams = sampling.CostParams
	// ComputeResponse is a server's results + signed commitment root.
	ComputeResponse = wire.ComputeResponse
	// StoreRequest is a signed upload bundle.
	StoreRequest = wire.StoreRequest
	// Warrant is the audit delegation token.
	Warrant = wire.Warrant
	// DVScheme is the identity-based designated-verifier signature scheme.
	DVScheme = dvs.Scheme
	// DesignatedSig is a designated-verifier signature (U, Σ).
	DesignatedSig = dvs.Designated
	// PrivateKey is an extracted identity secret key.
	PrivateKey = ibc.PrivateKey
	// HistoryLearner estimates audit-cost coefficients online (§VII-C).
	HistoryLearner = costmodel.HistoryLearner
	// Observation is one audit outcome fed to the learner.
	Observation = costmodel.Observation
	// StorageAuditConfig shapes a stored-data audit.
	StorageAuditConfig = core.StorageAuditConfig
	// ColdDataCheater deletes blocks outside a hot access set.
	ColdDataCheater = core.ColdDataCheater
	// EpochConfig shapes the mobile-adversary epoch simulation.
	EpochConfig = epoch.Config
	// EpochResult is the epoch simulation outcome.
	EpochResult = epoch.Result
	// ErasureCoder is the Reed–Solomon coder behind WithParity.
	ErasureCoder = erasure.Coder
	// MultiAuditReport is the outcome of a cross-sub-job batch audit.
	MultiAuditReport = core.MultiAuditReport
	// Evidence is a signed, transferable audit verdict.
	Evidence = core.Evidence
	// Hub is the observability hub: a metrics registry plus an audit span
	// tracer. Attach with Auditor.WithObs and the Observed* transports,
	// then serve it with Hub.ListenAndServe.
	Hub = obs.Hub
	// AdminServer serves a Hub's /metrics, /traces, /healthz and pprof.
	AdminServer = obs.AdminServer
)

// System is a running SecCloud deployment: the SIO with its master secret
// plus the shared public parameters. All parties are created from it.
type System struct {
	sio *ibc.SIO
}

// NewSystem performs the paper's system-initialization phase with a fresh
// random master secret.
func NewSystem(ps ParamSet) (*System, error) {
	pp, err := paramsFor(ps)
	if err != nil {
		return nil, err
	}
	sio, err := ibc.Setup(pp, rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("seccloud: system setup: %w", err)
	}
	return &System{sio: sio}, nil
}

// NewSystemDeterministic builds a system from a fixed master secret, for
// reproducible simulations and benchmarks only.
func NewSystemDeterministic(ps ParamSet, seed int64) (*System, error) {
	pp, err := paramsFor(ps)
	if err != nil {
		return nil, err
	}
	sio, err := ibc.SetupDeterministic(pp, big.NewInt(seed))
	if err != nil {
		return nil, fmt.Errorf("seccloud: deterministic setup: %w", err)
	}
	return &System{sio: sio}, nil
}

func paramsFor(ps ParamSet) (*pairing.Params, error) {
	switch ps {
	case ParamSS512:
		return pairing.SS512(), nil
	case ParamInsecureTest256:
		return pairing.InsecureTest256(), nil
	default:
		return nil, fmt.Errorf("seccloud: unknown parameter set %d", ps)
	}
}

// Params exposes the public system parameters (for advanced integrations).
func (s *System) Params() *ibc.SystemParams { return s.sio.Params() }

// Scheme exposes the designated-verifier signature scheme over this
// system's parameters, for direct cryptographic use (see
// examples/privacy-audit).
func (s *System) Scheme() *DVScheme { return dvs.NewScheme(s.sio.Params()) }

// ExtractKey issues the identity secret key for id — the SIO registration
// step. In a real deployment this happens over a secure channel.
func (s *System) ExtractKey(id string) (*PrivateKey, error) {
	return s.sio.Extract(id)
}

// NewHistoryLearner returns a cost-coefficient learner with EWMA weight
// alpha ∈ (0, 1].
func NewHistoryLearner(alpha float64) (*HistoryLearner, error) {
	return costmodel.NewHistoryLearner(alpha)
}

// NewUser registers a cloud user: extracts its identity key and wraps it.
func (s *System) NewUser(id string) (*User, error) {
	key, err := s.sio.Extract(id)
	if err != nil {
		return nil, fmt.Errorf("seccloud: registering user: %w", err)
	}
	return core.NewUser(s.sio.Params(), key, rand.Reader), nil
}

// NewServer registers a cloud server. A zero cfg gets honest behaviour
// and crypto/rand randomness; set cfg.VerifyOnStore to have the server
// check designated signatures at upload time.
func (s *System) NewServer(id string, cfg ServerConfig) (*Server, error) {
	key, err := s.sio.Extract(id)
	if err != nil {
		return nil, fmt.Errorf("seccloud: registering server: %w", err)
	}
	if cfg.Random == nil {
		cfg.Random = rand.Reader
	}
	return core.NewServer(s.sio.Params(), key, cfg)
}

// NewAuditor registers the designated agency.
func (s *System) NewAuditor(id string) (*Auditor, error) {
	key, err := s.sio.Extract(id)
	if err != nil {
		return nil, fmt.Errorf("seccloud: registering auditor: %w", err)
	}
	return core.NewAgency(s.sio.Params(), key, rand.Reader), nil
}

// Loopback wires a server into an in-process link with exact byte
// accounting and no modeled latency.
func Loopback(server *Server) Client {
	return netsim.NewLoopback(server, netsim.LinkConfig{})
}

// LoopbackWithLink is Loopback with a latency/bandwidth model.
func LoopbackWithLink(server *Server, link LinkConfig) Client {
	return netsim.NewLoopback(server, link)
}

// ServeTCP exposes a server on a TCP address ("127.0.0.1:0" for an
// ephemeral port); the returned server reports its address and must be
// closed by the caller.
func ServeTCP(addr string, server *Server) (*netsim.TCPServer, error) {
	return netsim.NewTCPServer(addr, server)
}

// DialTCP connects to a served server.
func DialTCP(addr string) (Client, error) { return netsim.DialTCP(addr) }

// NewHub returns a fresh observability hub.
func NewHub() *Hub { return obs.NewHub() }

// ObservedLoopback is Loopback with transport instrumentation on hub
// (rpc_requests_total, rpc_latency_seconds under transport="loopback").
func ObservedLoopback(server *Server, hub *Hub) Client {
	return netsim.NewLoopback(server, netsim.LinkConfig{}).WithObs(hub)
}

// DialTCPObserved is DialTCP with transport instrumentation on hub.
func DialTCPObserved(addr string, hub *Hub) (Client, error) {
	return netsim.DialTCPConfig(addr, netsim.TCPClientConfig{Obs: hub})
}

// NewCSP builds a provider scheduler over server links.
func NewCSP(clients []Client) (*CSP, error) { return core.NewCSP(clients) }

// NewGenerator returns a seeded workload generator.
func NewGenerator(seed int64) *Generator { return workload.NewGenerator(seed) }

// RequiredSampleSize returns the minimal t with cheat-success probability
// ≤ epsilon (Definition 1 / Figure 4).
func RequiredSampleSize(p SamplingParams, epsilon float64) (int, error) {
	return sampling.RequiredSampleSize(p, epsilon)
}

// OptimalSampleSize returns the cost-minimizing t of Theorem 3.
func OptimalSampleSize(c CostParams) (int, error) {
	return sampling.OptimalSampleSize(c)
}

// MeasureOps times the primitive crypto operations on this host — the
// local re-measurement of the paper's Table I.
func MeasureOps(ps ParamSet, iters int) (OpTimes, error) {
	pp, err := paramsFor(ps)
	if err != nil {
		return OpTimes{}, err
	}
	return costmodel.Measure(pp, iters)
}

// Delegate issues the audit warrant and assembles the delegation in one
// step; notAfter bounds the DA's authority in time.
func Delegate(user *User, auditorID, jobID string, job *Job,
	resp *ComputeResponse, notAfter time.Time,
) (*JobDelegation, error) {
	warrant, err := user.Delegate(auditorID, jobID, notAfter)
	if err != nil {
		return nil, err
	}
	return &JobDelegation{
		UserID:   user.ID(),
		ServerID: resp.ServerID,
		JobID:    jobID,
		Tasks:    core.TasksToWire(job),
		Results:  resp.Results,
		Root:     resp.Root,
		RootSig:  resp.RootSig,
		Warrant:  warrant,
	}, nil
}

// Delegations converts distributed sub-jobs into one JobDelegation per
// server for independent audits.
func Delegations(user *User, subs []*SubJob, warrant Warrant) []*JobDelegation {
	return core.Delegations(user, subs, warrant)
}

// MergeResults reassembles per-server sub-job results into parent-job
// order, verifying complete disjoint coverage.
func MergeResults(jobLen int, subs []*SubJob) ([][]byte, error) {
	return core.MergeResults(jobLen, subs)
}

// VerifyEvidence checks a signed audit verdict against the issuing
// auditor's identity; any party holding the system parameters can run it.
func (s *System) VerifyEvidence(e *Evidence) error {
	return core.VerifyEvidence(s.Scheme(), e)
}

// RunEpochSimulation executes the mobile-adversary epoch simulation
// (§III-B / HAIL model): b of n servers are corrupted each epoch while
// the DA audits with a fixed sampling budget.
func RunEpochSimulation(cfg EpochConfig) (*EpochResult, error) {
	return epoch.Run(cfg)
}

// NewColdDataCheater builds the rational storage-cheating policy that
// deletes every block absent from the given access trace.
func NewColdDataCheater(trace []uint64) *ColdDataCheater {
	return core.NewColdDataCheater(trace)
}

// WithParity extends a dataset with Reed–Solomon parity blocks so that up
// to parityShards deleted blocks can be recovered from survivors (the
// retrievability extension; see internal/erasure).
func WithParity(ds *Dataset, parityShards int) (*Dataset, *ErasureCoder, error) {
	return workload.WithParity(ds, parityShards)
}

// RecoverDataset reconstructs nil entries of blocks in place using the
// coder returned by WithParity.
func RecoverDataset(coder *ErasureCoder, blocks [][]byte) error {
	return workload.RecoverDataset(coder, blocks)
}
